// Package core is the comparison-study harness — the paper's contribution.
// It executes scenario×protocol×seed simulation runs (in parallel across
// runs, each run single-threaded and deterministic), aggregates replication
// seeds, and regenerates every figure and table of the evaluation.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/routing/dsdv"
	"adhocsim/internal/routing/dsr"
	"adhocsim/internal/routing/flood"
	"adhocsim/internal/routing/paodv"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/topo"
	"adhocsim/internal/trace"
	"adhocsim/internal/traffic"
)

// Protocol names accepted by the harness.
const (
	DSR   = "DSR"
	AODV  = "AODV"
	PAODV = "PAODV"
	CBRP  = "CBRP"
	DSDV  = "DSDV"
	Flood = "FLOOD"
)

// StudyProtocols are the protocols of the IPPS'01 comparison, in the order
// figures present them.
func StudyProtocols() []string { return []string{DSR, AODV, PAODV, CBRP, DSDV} }

// AllProtocols additionally includes the flooding yardstick.
func AllProtocols() []string { return append(StudyProtocols(), Flood) }

// ProtocolTweaks carries ablation overrides threaded into factories.
type ProtocolTweaks struct {
	AODV aodv.Config
	DSR  dsr.Config
	CBRP cbrp.Config
	DSDV dsdv.Config
}

// FactoryFor resolves a protocol name to a factory. Radio parameters are
// needed by PAODV (its warning threshold is a received-power level).
func FactoryFor(name string, radio phy.RadioParams, tweaks ProtocolTweaks) (network.ProtocolFactory, error) {
	switch name {
	case DSR:
		return dsr.Factory(tweaks.DSR), nil
	case AODV:
		return aodv.Factory(tweaks.AODV), nil
	case PAODV:
		return paodv.Factory(paodv.Config{AODV: tweaks.AODV, Radio: radio}), nil
	case CBRP:
		return cbrp.Factory(tweaks.CBRP), nil
	case DSDV:
		return dsdv.Factory(tweaks.DSDV), nil
	case Flood:
		return flood.Factory(flood.Config{}), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// RunConfig describes one simulation run.
type RunConfig struct {
	Spec     scenario.Spec
	Protocol string
	Seed     int64
	Mac      mac.Config
	Tweaks   ProtocolTweaks
	// EventLimit guards against runaway loops (0 = a generous default
	// scaled by duration and node count).
	EventLimit uint64
	// Tracer, when non-nil, receives every network-layer packet event
	// (use only with a single seed; trace interleaving across parallel
	// replications is not meaningful).
	Tracer trace.Tracer
}

// Run executes one scenario×protocol×seed simulation and returns its
// metrics.
func Run(rc RunConfig) (stats.Results, error) {
	inst, err := rc.Spec.Generate(rc.Seed)
	if err != nil {
		return stats.Results{}, err
	}
	factory, err := FactoryFor(rc.Protocol, inst.Radio, rc.Tweaks)
	if err != nil {
		return stats.Results{}, err
	}
	oracle := topo.NewOracle(inst.Tracks, inst.Radio.RxRange())
	world, err := network.NewWorld(network.Config{
		Tracks:   inst.Tracks,
		Radio:    inst.Radio,
		Mac:      rc.Mac,
		Protocol: factory,
		Seed:     rc.Seed ^ 0x5eed,
		Oracle:   oracle,
		Tracer:   rc.Tracer,
	})
	if err != nil {
		return stats.Results{}, err
	}
	if _, err := traffic.Install(world, inst.Connections, sim.Time(0).Add(rc.Spec.Duration)); err != nil {
		return stats.Results{}, err
	}
	limit := rc.EventLimit
	if limit == 0 {
		// ~2M events per simulated second per 40 nodes is far beyond
		// any sane protocol; treat exceeding it as a bug.
		limit = uint64(rc.Spec.Duration.Seconds()*2e6) * uint64(rc.Spec.Nodes) / 40
		if limit < 10_000_000 {
			limit = 10_000_000
		}
	}
	world.Eng.Limit = limit
	world.Start()
	if err := world.Run(sim.Time(0).Add(rc.Spec.Duration)); err != nil {
		return stats.Results{}, fmt.Errorf("%s seed %d: %w", rc.Protocol, rc.Seed, err)
	}
	return world.Collector.Finalize(), nil
}

// RunReplicated executes the run for each seed in parallel and merges the
// results.
func RunReplicated(rc RunConfig, seeds []int64, workers int) (stats.Results, error) {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	if len(seeds) == 1 {
		rc.Seed = seeds[0]
		return Run(rc)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]stats.Results, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rc
			r.Seed = seed
			results[i], errs[i] = Run(r)
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Results{}, err
		}
	}
	return stats.MergeResults(results), nil
}

// Options configure a sweep: the scenario template, the protocols compared,
// replication seeds and parallelism.
type Options struct {
	Base      scenario.Spec
	Protocols []string
	Seeds     []int64
	Workers   int
	Mac       mac.Config
	Tweaks    ProtocolTweaks
}

// DefaultOptions returns study defaults (all five protocols, 3 seeds).
func DefaultOptions() Options {
	return Options{
		Base:      scenario.Default(),
		Protocols: StudyProtocols(),
		Seeds:     []int64{1, 2, 3},
	}
}

// SweepResult holds merged results for each protocol at each sweep point.
type SweepResult struct {
	XLabel    string
	Xs        []float64
	Protocols []string
	// Cells[protocol][i] is the merged result at Xs[i].
	Cells map[string][]stats.Results
}

// runSweep evaluates every protocol at every x (modifying the spec via
// apply), parallelising across (protocol, x, seed).
func runSweep(opts Options, xLabel string, xs []float64, apply func(*scenario.Spec, float64)) (*SweepResult, error) {
	if len(opts.Protocols) == 0 {
		opts.Protocols = StudyProtocols()
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = []int64{1}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		proto   string
		xi      int
		seedIdx int
	}
	type slot struct {
		res stats.Results
		err error
	}
	jobs := make([]job, 0, len(opts.Protocols)*len(xs)*len(opts.Seeds))
	for _, p := range opts.Protocols {
		for xi := range xs {
			for si := range opts.Seeds {
				jobs = append(jobs, job{p, xi, si})
			}
		}
	}
	slots := make(map[job]*slot, len(jobs))
	for _, j := range jobs {
		slots[j] = &slot{}
	}
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				spec := opts.Base
				apply(&spec, xs[j.xi])
				rc := RunConfig{
					Spec:     spec,
					Protocol: j.proto,
					Seed:     opts.Seeds[j.seedIdx],
					Mac:      opts.Mac,
					Tweaks:   opts.Tweaks,
				}
				s := slots[j]
				s.res, s.err = Run(rc)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	out := &SweepResult{
		XLabel:    xLabel,
		Xs:        xs,
		Protocols: append([]string(nil), opts.Protocols...),
		Cells:     make(map[string][]stats.Results),
	}
	for _, p := range opts.Protocols {
		row := make([]stats.Results, len(xs))
		for xi := range xs {
			var reps []stats.Results
			for si := range opts.Seeds {
				s := slots[job{p, xi, si}]
				if s.err != nil {
					return nil, s.err
				}
				reps = append(reps, s.res)
			}
			row[xi] = stats.MergeResults(reps)
		}
		out.Cells[p] = row
	}
	return out, nil
}

// Metric extracts a scalar from run results for rendering.
type Metric struct {
	Name  string
	Unit  string
	Value func(stats.Results) float64
}

// Metrics available to figures and tables.
var (
	MetricPDR        = Metric{"pdr", "%", func(r stats.Results) float64 { return r.PDR * 100 }}
	MetricDelay      = Metric{"delay", "ms", func(r stats.Results) float64 { return r.AvgDelay * 1000 }}
	MetricOverhead   = Metric{"routing_overhead", "pkts", func(r stats.Results) float64 { return float64(r.RoutingTxPackets) }}
	MetricNRL        = Metric{"nrl", "tx/delivered", func(r stats.Results) float64 { return r.NormalizedRoutingLoad }}
	MetricThroughput = Metric{"throughput", "kbit/s", func(r stats.Results) float64 { return r.ThroughputKbps }}
	MetricMacLoad    = Metric{"mac_load", "frames/delivered", func(r stats.Results) float64 { return r.NormalizedMacLoad }}
	MetricAvgHops    = Metric{"avg_hops", "hops", func(r stats.Results) float64 { return r.AvgHops }}
)

// sortedKeys is a small helper for deterministic map iteration in renders.
func sortedKeys[M ~map[string]uint64](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
