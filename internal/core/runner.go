// Package core is the comparison-study harness — the paper's contribution.
// It executes scenario×protocol×seed simulation runs (in parallel across
// runs, each run single-threaded and deterministic), aggregates replication
// seeds, and regenerates every figure and table of the evaluation.
//
// The experiment API is open on three axes: protocols resolve through a
// registry (RegisterProtocol), scenario dimensions are swept through
// first-class Axis values (Sweep, Grid), and long experiments are
// cancellable and observable (context.Context plus Options.OnProgress).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"adhocsim/internal/mac"
	"adhocsim/internal/metrics"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/routing/dsdv"
	"adhocsim/internal/routing/dsr"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/topo"
	"adhocsim/internal/trace"
	"adhocsim/internal/traffic"
)

// Protocol names accepted by the harness.
const (
	DSR   = "DSR"
	AODV  = "AODV"
	PAODV = "PAODV"
	CBRP  = "CBRP"
	DSDV  = "DSDV"
	Flood = "FLOOD"
	// Autoconf is the randomized address-autoconfiguration protocol
	// (claim → probe → defend); pair it with a lifecycle model to study
	// network initialization under churn.
	Autoconf = "AUTOCONF"
)

// StudyProtocols are the protocols of the IPPS'01 comparison, in the order
// figures present them.
func StudyProtocols() []string { return []string{DSR, AODV, PAODV, CBRP, DSDV} }

// AllProtocols additionally includes the flooding yardstick.
func AllProtocols() []string { return append(StudyProtocols(), Flood) }

// ProtocolTweaks carries ablation overrides threaded into factories.
type ProtocolTweaks struct {
	AODV aodv.Config
	DSR  dsr.Config
	CBRP cbrp.Config
	DSDV dsdv.Config
}

// RunConfig describes one simulation run.
type RunConfig struct {
	Spec     scenario.Spec
	Protocol string
	Seed     int64
	Mac      mac.Config
	// Phy tunes the channel's transmit fast path (spatial index vs the
	// legacy brute-force loop); the zero value selects the index with
	// world-derived reindexing defaults.
	Phy    phy.Config
	Tweaks ProtocolTweaks
	// EventLimit guards against runaway loops (0 = a generous default
	// scaled by duration and node count).
	EventLimit uint64
	// Tracer, when non-nil, receives every network-layer packet event
	// (use only with a single seed; trace interleaving across parallel
	// replications is not meaningful).
	Tracer trace.Tracer
	// Sinks, when non-empty, receive the run's metric sample stream
	// (deliveries, delays, transmissions, drops) as typed metrics.Samples.
	// Like Tracer, sinks are single-goroutine: use only with a single seed.
	Sinks []metrics.Sink
}

// Run executes one scenario×protocol×seed simulation and returns its
// metrics. The context is polled inside the event loop: cancelling it
// aborts the simulation promptly with the context's error. A nil context
// is treated as context.Background().
func Run(ctx context.Context, rc RunConfig) (stats.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return stats.Results{}, err
	}
	inst, err := rc.Spec.Generate(rc.Seed)
	if err != nil {
		return stats.Results{}, err
	}
	factory, err := FactoryFor(rc.Protocol, inst.Radio, rc.Tweaks)
	if err != nil {
		return stats.Results{}, err
	}
	oracle := topo.NewOracle(inst.Tracks, inst.Radio.RxRange())
	phyCfg := rc.Phy
	if rc.Spec.Radio.SINR {
		// The serializable reception-mode switch lives on the scenario
		// spec (campaigns and the HTTP service patch it); the phy-level
		// toggle stays available for direct callers.
		phyCfg.SINR = true
	}
	world, err := network.NewWorld(network.Config{
		Tracks:    inst.Tracks,
		Radio:     inst.Radio,
		Phy:       phyCfg,
		Mac:       rc.Mac,
		Protocol:  factory,
		Seed:      rc.Seed ^ 0x5eed,
		Oracle:    oracle,
		Tracer:    rc.Tracer,
		Sinks:     rc.Sinks,
		Lifecycle: inst.Lifecycle,
	})
	if err != nil {
		return stats.Results{}, err
	}
	if _, err := traffic.Install(world, inst.Connections, sim.Time(0).Add(rc.Spec.Duration)); err != nil {
		return stats.Results{}, err
	}
	limit := rc.EventLimit
	if limit == 0 {
		// ~2M events per simulated second per 40 nodes is far beyond
		// any sane protocol; treat exceeding it as a bug.
		limit = uint64(rc.Spec.Duration.Seconds()*2e6) * uint64(rc.Spec.Nodes) / 40
		if limit < 10_000_000 {
			limit = 10_000_000
		}
	}
	world.Eng.Limit = limit
	world.Start()
	if err := world.Run(ctx, sim.Time(0).Add(rc.Spec.Duration)); err != nil {
		return stats.Results{}, fmt.Errorf("%s seed %d: %w", rc.Protocol, rc.Seed, err)
	}
	return world.Collector.Finalize(), nil
}

// RunReplicated executes the run for each seed in parallel and merges the
// results.
func RunReplicated(ctx context.Context, rc RunConfig, seeds []int64, workers int) (stats.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	if len(seeds) == 1 {
		rc.Seed = seeds[0]
		return Run(ctx, rc)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]stats.Results, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rc
			r.Seed = seed
			results[i], errs[i] = Run(ctx, r)
		}(i, seed)
	}
	wg.Wait()
	if err := firstError(ctx, errs); err != nil {
		return stats.Results{}, err
	}
	return stats.MergeResults(results), nil
}

// Progress reports one completed run inside a sweep or grid.
type Progress struct {
	// Done runs out of Total have finished (including this one).
	Done, Total int
	// Protocol, Seed and the axis point of the run that just completed.
	Protocol string
	Seed     int64
	// Axis is the swept axis label ("pause_s"); for Grid it names every
	// axis joined by "×". X holds the primary axis value.
	Axis string
	X    float64
}

// ProgressFunc observes sweep progress. Calls are serialized (never
// concurrent) but originate from worker goroutines, so the callback must
// not block for long.
type ProgressFunc func(Progress)

// ProgressPrinter returns a ProgressFunc rendering a single updating line
// to w ("[done/total] PROTO axis=x seed n" behind a carriage return),
// terminated when the last run completes. It is the shared progress
// renderer of the cmd tools and examples.
func ProgressPrinter(w io.Writer) ProgressFunc {
	return func(p Progress) {
		fmt.Fprintf(w, "\r[%d/%d] %s %s=%g seed %d        ",
			p.Done, p.Total, p.Protocol, p.Axis, p.X, p.Seed)
		if p.Done == p.Total {
			fmt.Fprintln(w)
		}
	}
}

// Options configure a sweep: the scenario template, the protocols compared,
// replication seeds and parallelism.
type Options struct {
	Base      scenario.Spec
	Protocols []string
	Seeds     []int64
	Workers   int
	Mac       mac.Config
	Tweaks    ProtocolTweaks
	// OnProgress, when non-nil, is invoked after every completed run of a
	// sweep or grid.
	OnProgress ProgressFunc
}

// DefaultOptions returns study defaults (all five protocols, 3 seeds).
func DefaultOptions() Options {
	return Options{
		Base:      scenario.Default(),
		Protocols: StudyProtocols(),
		Seeds:     []int64{1, 2, 3},
	}
}

// normalized fills the zero-value defaults of Options.
func (o Options) normalized() Options {
	if len(o.Protocols) == 0 {
		o.Protocols = StudyProtocols()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// runJob is one unit of work for the shared worker pool: a fully-resolved
// scenario×protocol×seed triple plus the progress annotations of the axis
// point it came from.
type runJob struct {
	spec     scenario.Spec
	protocol string
	seed     int64
	axis     string
	x        float64
}

// runJobs executes every job on a shared worker pool and returns results in
// job order (a flat indexed slice — deterministic, no per-job map
// allocation or struct-key hashing on the dispatch path). Cancelling the
// context stops dispatch and interrupts in-flight simulations; the
// context's error is returned unless an earlier job failed on its own.
func runJobs(ctx context.Context, opts Options, jobs []runJob) ([]stats.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]stats.Results, len(jobs))
	errs := make([]error, len(jobs))

	var progressMu sync.Mutex
	done := 0
	report := func(i int) {
		if opts.OnProgress == nil {
			return
		}
		j := jobs[i]
		progressMu.Lock()
		done++
		p := Progress{
			Done:     done,
			Total:    len(jobs),
			Protocol: j.protocol,
			Seed:     j.seed,
			Axis:     j.axis,
			X:        j.x,
		}
		opts.OnProgress(p)
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				j := jobs[i]
				results[i], errs[i] = Run(ctx, RunConfig{
					Spec:     j.spec,
					Protocol: j.protocol,
					Seed:     j.seed,
					Mac:      opts.Mac,
					Tweaks:   opts.Tweaks,
				})
				report(i)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case ch <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	if err := firstError(ctx, errs); err != nil {
		return nil, err
	}
	return results, nil
}

// firstError picks the error to surface from a batch: the first failure
// that is not itself a symptom of cancellation, else the context's error.
// This guarantees a cancelled sweep reports context.Canceled (or
// DeadlineExceeded) rather than an arbitrary wrapped per-run error.
func firstError(ctx context.Context, errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return ctx.Err()
}

// SweepResult holds merged results for each protocol at each sweep point.
type SweepResult struct {
	XLabel string
	Xs     []float64
	// XTicks are the formatted axis values parallel to Xs — for the
	// categorical model axes these are the model names ("gauss-markov"),
	// not the opaque indices in Xs. Renders and the JSON exports use them.
	XTicks    []string
	Protocols []string
	// Cells[protocol][i] is the merged result at Xs[i].
	Cells map[string][]stats.Results
}

// Tick returns the display form of the xi-th sweep point: the formatted
// tick when present (a model name on categorical axes), else the plain
// number. Hand-assembled SweepResults without XTicks keep working.
func (sr *SweepResult) Tick(xi int) string {
	if xi < len(sr.XTicks) {
		return sr.XTicks[xi]
	}
	return strconv.FormatFloat(sr.Xs[xi], 'g', -1, 64)
}

// Sweep evaluates every protocol in opts at every value of the axis,
// parallelising across (protocol, value, seed) on one shared worker pool
// and merging replication seeds per point. It subsumes the four hard-coded
// study sweeps: any Spec dimension an Axis can Apply is sweepable. Sweep is
// the one-axis case of Grid.
func Sweep(ctx context.Context, opts Options, axis Axis) (*SweepResult, error) {
	g, err := Grid(ctx, opts, axis)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(g.Points))
	ticks := make([]string, len(g.Points))
	for i, pt := range g.Points {
		xs[i] = pt[0]
		ticks[i] = g.PointLabels[i][0]
	}
	return &SweepResult{
		XLabel:    g.Labels[0],
		Xs:        xs,
		XTicks:    ticks,
		Protocols: g.Protocols,
		Cells:     g.Cells,
	}, nil
}

// Metric extracts a scalar from run results for rendering.
type Metric struct {
	Name  string
	Unit  string
	Value func(stats.Results) float64
}

// Metrics available to figures and tables.
var (
	MetricPDR        = Metric{"pdr", "%", func(r stats.Results) float64 { return r.PDR * 100 }}
	MetricDelay      = Metric{"delay", "ms", func(r stats.Results) float64 { return r.AvgDelay * 1000 }}
	MetricOverhead   = Metric{"routing_overhead", "pkts", func(r stats.Results) float64 { return float64(r.RoutingTxPackets) }}
	MetricNRL        = Metric{"nrl", "tx/delivered", func(r stats.Results) float64 { return r.NormalizedRoutingLoad }}
	MetricThroughput = Metric{"throughput", "kbit/s", func(r stats.Results) float64 { return r.ThroughputKbps }}
	MetricMacLoad    = Metric{"mac_load", "frames/delivered", func(r stats.Results) float64 { return r.NormalizedMacLoad }}
	MetricAvgHops    = Metric{"avg_hops", "hops", func(r stats.Results) float64 { return r.AvgHops }}
	// MetricTimeToConverge / MetricAddrCollisionRate are populated by the
	// address-autoconfiguration census (protocol AUTOCONF); they read zero
	// for protocols that do not autoconfigure.
	MetricTimeToConverge    = Metric{"time_to_converge", "s", func(r stats.Results) float64 { return r.TimeToConverge }}
	MetricAddrCollisionRate = Metric{"addr_collision_rate", "ratio", func(r stats.Results) float64 { return r.AddrCollisionRate }}
)

// Metrics returns the full metric catalogue in presentation order.
func Metrics() []Metric {
	return []Metric{MetricPDR, MetricDelay, MetricOverhead, MetricNRL,
		MetricThroughput, MetricMacLoad, MetricAvgHops,
		MetricTimeToConverge, MetricAddrCollisionRate}
}

// MetricByName resolves a catalogue metric by its Name ("pdr", "delay", …),
// case-insensitively.
func MetricByName(name string) (Metric, error) {
	for _, m := range Metrics() {
		if strings.EqualFold(strings.TrimSpace(name), m.Name) {
			return m, nil
		}
	}
	known := make([]string, 0, len(Metrics()))
	for _, m := range Metrics() {
		known = append(known, m.Name)
	}
	return Metric{}, fmt.Errorf("core: unknown metric %q (known: %s)", name, strings.Join(known, ", "))
}

// sortedKeys is a small helper for deterministic map iteration in renders.
func sortedKeys[M ~map[string]uint64](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
