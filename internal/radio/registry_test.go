package radio

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"adhocsim/internal/phy"
)

// TestDefaultModelMatchesLegacyPath: the registry's zero-valued resolution
// must reproduce the pre-registry scenario radio logic bit-for-bit — the
// parity bridge the golden seed tests lean on.
func TestDefaultModelMatchesLegacyPath(t *testing.T) {
	got, err := New("", Env{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, phy.DefaultParams()) {
		t.Fatalf("zero env = %+v, want DefaultParams %+v", got, phy.DefaultParams())
	}
	// TxRange 250 with no CS override is the DefaultParams special case
	// (2.2×250 is not exactly 550 in floats).
	got, err = New("tworay", Env{TxRange: 250}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, phy.DefaultParams()) {
		t.Fatalf("tx 250 = %+v, want DefaultParams", got)
	}
	// Explicit ranges go through ParamsForRange, exactly.
	got, err = New("TwoRay", Env{TxRange: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := phy.ParamsForRange(100, 220.00000000000003); got.RxThreshold != want.RxThreshold {
		// Compare via the same expression the legacy code used.
		want = phy.ParamsForRange(100, 2.2*100)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tx 100 = %+v, want ParamsForRange(100, 2.2*100)", got)
		}
	}
}

// TestRangesHonoured: every built-in model's thresholds imply exactly the
// env's reception and carrier-sense ranges under its nominal propagation.
func TestRangesHonoured(t *testing.T) {
	for _, name := range Registered() {
		p, err := New(name, Env{TxRange: 180, CSRange: 400, Seed: 9}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r := p.RxRange(); math.Abs(r-180) > 1 {
			t.Fatalf("%s: rx range %.2f, want 180", name, r)
		}
		if r := p.CSRange(); math.Abs(r-400) > 1 {
			t.Fatalf("%s: cs range %.2f, want 400", name, r)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestBuilderValidation: unknown names, unknown parameters, out-of-range
// parameters and inverted ranges must all fail at resolution time.
func TestBuilderValidation(t *testing.T) {
	bad := []struct {
		name   string
		env    Env
		params map[string]float64
	}{
		{"warpdrive", Env{}, nil},
		{"tworay", Env{}, map[string]float64{"sigma_db": 1}},             // unknown param for this model
		{"tworay", Env{}, map[string]float64{"capture_ratio": 1}},        // ratio must exceed 1
		{"tworay", Env{}, map[string]float64{"capture_ratio": 0.5}},      // "
		{"tworay", Env{TxRange: -1}, nil},                                // negative range
		{"tworay", Env{TxRange: 300, CSRange: 200}, nil},                 // cs below rx
		{"freespace", Env{}, map[string]float64{"exponent": 3}},          // unknown param
		{"pathloss", Env{}, map[string]float64{"exponent": -1}},          // non-positive exponent
		{"pathloss", Env{}, map[string]float64{"ref_dist_m": 0}},         // non-positive d0
		{"shadowing", Env{}, map[string]float64{"sigma_db": -2}},         // negative sigma
		{"shadowing", Env{}, map[string]float64{"max_dev_db": -1}},       // negative clamp
		{"shadowing", Env{}, map[string]float64{"sigma": 4}},             // misspelled key
		{"ricean", Env{}, map[string]float64{"max_gain_db": -3}},         // negative clamp
		{"rayleigh", Env{}, map[string]float64{"k_db": 6}},               // rayleigh has no K
		{"rayleigh", Env{}, map[string]float64{"noise_dbm": math.NaN()}}, // NaN noise fails Validate
	}
	for i, tc := range bad {
		if _, err := New(tc.name, tc.env, tc.params); err == nil {
			t.Fatalf("bad model %d (%s %v) accepted", i, tc.name, tc.params)
		}
	}
}

// TestUnknownModelErrorListsRegistry mirrors the mobility/traffic error
// idiom: the message names the registered models.
func TestUnknownModelErrorLists(t *testing.T) {
	_, err := New("warpdrive", Env{}, nil)
	if err == nil || !strings.Contains(err.Error(), "tworay") {
		t.Fatalf("error %v does not list registered models", err)
	}
}

// TestNoiseParam: noise_dbm converts to Watts on every builder.
func TestNoiseParam(t *testing.T) {
	p, err := New("tworay", Env{}, map[string]float64{"noise_dbm": -90})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1e-12; math.Abs(p.NoiseW-want)/want > 1e-9 {
		t.Fatalf("NoiseW = %g, want %g", p.NoiseW, want)
	}
	p, err = New("tworay", Env{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NoiseW != 0 {
		t.Fatalf("default NoiseW = %g, want 0", p.NoiseW)
	}
}

// TestRegisterOpenSurface: external registration works and duplicate
// registration fails, like the other model registries.
func TestRegisterOpenSurface(t *testing.T) {
	err := Register("test-const", func(env Env, p Params) (phy.RadioParams, error) {
		params := phy.DefaultParams()
		return params, p.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Known("test-const") {
		t.Fatal("registered model unknown")
	}
	if _, err := New("TEST-CONST", Env{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := Register("test-const", nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	if err := Register("tworay", func(Env, Params) (phy.RadioParams, error) {
		return phy.RadioParams{}, nil
	}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
