// Package radio is the registry of named, serializable radio/propagation
// models — the third scenario-model registry next to mobility and traffic.
// A scenario selects a model by name with a JSON-friendly parameter map
// (scenario.RadioSpec) and the builder resolves it to concrete
// phy.RadioParams, so campaigns and the HTTP service can sweep channel
// conditions the way they already sweep mobility and traffic families.
//
// Built-ins: "tworay" (the study's CMU two-ray ground default),
// "freespace", "pathloss" (tunable exponent), "shadowing" (log-normal
// per-link deviations), "ricean" and "rayleigh" (per-reception fading).
// The stochastic models derive every draw from the run seed
// (sim.DeriveSeed / sim.DeriveSeedValues), so runs stay bit-reproducible
// across processes and under campaign checkpoint/resume, and they clamp
// their deviations and declare the bound (phy.GainBounded) so the spatial
// index's distance pruning stays exact.
package radio

import (
	"fmt"
	"math"

	"adhocsim/internal/modelreg"
	"adhocsim/internal/phy"
)

// Env carries the scenario-level radio parameters into a model builder:
// the generic range knobs every spec exposes, and the run seed stochastic
// models root their per-link/per-reception derivations in. Model-specific
// parameters arrive separately as a name→value map, so a radio spec stays
// JSON-serializable end to end (scenario.RadioSpec).
type Env struct {
	// TxRange is the nominal reception range in metres; 0 selects the
	// study default (250 m).
	TxRange float64
	// CSRange is the carrier-sense range in metres; 0 selects 2.2×TxRange
	// (550 m at the default).
	CSRange float64
	// Seed is the scenario's run seed — the root of shadowing/fading
	// derivation. Validation dry-runs pass 0; the draws themselves are
	// content-derived, so any seed exercises the same code paths.
	Seed int64
}

// ranges resolves the env's range fields to concrete rx/cs ranges.
func (e Env) ranges() (rx, cs float64, err error) {
	if e.TxRange < 0 || e.CSRange < 0 {
		return 0, 0, fmt.Errorf("negative range (tx %v m, cs %v m)", e.TxRange, e.CSRange)
	}
	rx = e.TxRange
	if rx == 0 {
		rx = 250
	}
	cs = e.CSRange
	if cs == 0 {
		cs = 2.2 * rx
	}
	if cs < rx {
		return 0, 0, fmt.Errorf("carrier-sense range %v m below reception range %v m", cs, rx)
	}
	return rx, cs, nil
}

// Builder constructs concrete radio parameters from the scenario
// environment and a model-specific parameter map. Builders must be pure
// and must reject unknown parameter names (use Params.Err) so misspelled
// keys fail loudly instead of silently selecting defaults.
type Builder func(env Env, params Params) (phy.RadioParams, error)

// Params is the read-tracking parameter-map view handed to builders.
type Params = modelreg.Params

// NewParams wraps a raw parameter map (nil is fine).
func NewParams(m map[string]float64) Params { return modelreg.NewParams(m) }

// DefaultModel is the model an empty spec name selects: the study's
// two-ray ground reflection.
const DefaultModel = "tworay"

var registry = modelreg.New[Builder]("radio", DefaultModel)

// Register adds a radio model under the given case-insensitive name,
// making it available to scenario specs, the campaign engine and the cmd
// tools. Registration is open: code outside this package can plug in new
// models. Registering an empty name, a nil builder, or a taken name is an
// error.
func Register(name string, b Builder) error { return registry.Register(name, b) }

// Registered returns every registered radio model name, sorted.
func Registered() []string { return registry.Names() }

// Known reports whether a model name resolves in the registry (the empty
// name selects the default model and is always known).
func Known(name string) bool { return registry.Known(name) }

// ParamNames reports the parameter keys the named model consumes, observed
// by dry-building it with an empty parameter map.
func ParamNames(name string) ([]string, error) {
	b, _, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	p := NewParams(nil)
	_, _ = b(Env{}, p)
	return p.Used(), nil
}

// New resolves a radio model name through the registry and builds it for
// the given environment. An empty name selects DefaultModel. The built
// parameters are eagerly validated (phy.RadioParams.Validate), so a
// capture ratio at or below 1, inverted thresholds, or an out-of-range
// model parameter fails at Spec.Validate / campaign-submission time
// rather than mid-campaign — the registry analogue of the mobility
// dry-run validation.
func New(name string, env Env, params map[string]float64) (phy.RadioParams, error) {
	b, key, err := registry.Lookup(name)
	if err != nil {
		return phy.RadioParams{}, err
	}
	p, err := b(env, NewParams(params))
	if err != nil {
		return phy.RadioParams{}, fmt.Errorf("radio: model %q: %w", key, err)
	}
	if err := p.Validate(); err != nil {
		return phy.RadioParams{}, fmt.Errorf("radio: model %q: %w", key, err)
	}
	return p, nil
}

// studyTwoRay returns the CMU 914 MHz WaveLAN two-ray parameterisation
// every built-in model anchors to — taken from phy.DefaultParams, not
// re-declared, so the study constants cannot drift between packages.
func studyTwoRay() phy.TwoRayGround {
	return phy.DefaultParams().Prop.(phy.TwoRayGround)
}

// studyFreeSpace returns the free-space component of the study
// parameterisation (unit gains, 914 MHz, no system loss).
func studyFreeSpace() phy.FreeSpace {
	tr := studyTwoRay()
	return phy.FreeSpace{Gt: tr.Gt, Gr: tr.Gr, Lambda: tr.Lambda, L: tr.L}
}

// paramsFor derives thresholds for the given nominal model so that the
// reception range is exactly rx metres and the carrier-sense range cs
// metres — the same derivation idiom as phy.ParamsForRange, generalised
// to any propagation model. Transmit power and capture ratio come from
// the study defaults.
func paramsFor(prop phy.Propagation, rx, cs float64) phy.RadioParams {
	p := phy.DefaultParams()
	p.Prop = prop
	p.RxThreshold = prop.RxPower(p.TxPower, rx)
	p.CSThreshold = prop.RxPower(p.TxPower, cs)
	return p
}

// common applies the parameters every builder understands: the capture /
// SINR power ratio and the noise floor.
func common(p *phy.RadioParams, params Params) {
	p.CaptureRatio = params.Get("capture_ratio", p.CaptureRatio)
	if dbm := params.Get("noise_dbm", math.Inf(-1)); !math.IsInf(dbm, -1) {
		p.NoiseW = math.Pow(10, (dbm-30)/10)
	}
}

// pathLossFor builds the tunable-exponent nominal model shared by
// "pathloss" and "shadowing".
func pathLossFor(params Params, defExp float64) (phy.PathLossExp, error) {
	exp := params.Get("exponent", defExp)
	d0 := params.Get("ref_dist_m", 1)
	if exp <= 0 {
		return phy.PathLossExp{}, fmt.Errorf("exponent must be positive, got %v", exp)
	}
	if d0 <= 0 {
		return phy.PathLossExp{}, fmt.Errorf("ref_dist_m must be positive, got %v", d0)
	}
	return phy.PathLossExp{FS: studyFreeSpace(), D0: d0, Exp: exp}, nil
}

// The built-in models self-register so that scenario specs, campaign axes
// and external registrations all resolve through one mechanism.
func init() {
	// tworay reproduces the pre-registry scenario logic bit-for-bit: the
	// zero-valued env yields exactly phy.DefaultParams, and explicit
	// ranges go through phy.ParamsForRange — the golden seed-parity tests
	// pin this.
	registry.MustRegister(DefaultModel, func(env Env, p Params) (phy.RadioParams, error) {
		if _, _, err := env.ranges(); err != nil {
			return phy.RadioParams{}, err
		}
		params := phy.DefaultParams()
		if env.TxRange > 0 && env.TxRange != 250 || env.CSRange > 0 {
			cs := env.CSRange
			if cs <= 0 {
				cs = 2.2 * env.TxRange
			}
			params = phy.ParamsForRange(env.TxRange, cs)
		}
		common(&params, p)
		return params, p.Err()
	})
	registry.MustRegister("freespace", func(env Env, p Params) (phy.RadioParams, error) {
		rx, cs, err := env.ranges()
		if err != nil {
			return phy.RadioParams{}, err
		}
		params := paramsFor(studyFreeSpace(), rx, cs)
		common(&params, p)
		return params, p.Err()
	})
	registry.MustRegister("pathloss", func(env Env, p Params) (phy.RadioParams, error) {
		rx, cs, err := env.ranges()
		if err != nil {
			return phy.RadioParams{}, err
		}
		prop, err := pathLossFor(p, 3)
		if err != nil {
			return phy.RadioParams{}, err
		}
		params := paramsFor(prop, rx, cs)
		common(&params, p)
		return params, p.Err()
	})
	registry.MustRegister("shadowing", func(env Env, p Params) (phy.RadioParams, error) {
		rx, cs, err := env.ranges()
		if err != nil {
			return phy.RadioParams{}, err
		}
		base, err := pathLossFor(p, 2.8)
		if err != nil {
			return phy.RadioParams{}, err
		}
		sigma := p.Get("sigma_db", 4)
		maxDev := p.Get("max_dev_db", 2*sigma)
		if sigma < 0 {
			return phy.RadioParams{}, fmt.Errorf("sigma_db must be non-negative, got %v", sigma)
		}
		if maxDev < 0 {
			return phy.RadioParams{}, fmt.Errorf("max_dev_db must be non-negative, got %v", maxDev)
		}
		params := paramsFor(NewShadowing(base, sigma, maxDev, env.Seed), rx, cs)
		common(&params, p)
		return params, p.Err()
	})
	fading := func(defaultKdB float64, fixedRayleigh bool) Builder {
		return func(env Env, p Params) (phy.RadioParams, error) {
			rx, cs, err := env.ranges()
			if err != nil {
				return phy.RadioParams{}, err
			}
			k := 0.0
			if !fixedRayleigh {
				k = math.Pow(10, p.Get("k_db", defaultKdB)/10)
			}
			maxGainDB := p.Get("max_gain_db", 6)
			if maxGainDB < 0 {
				return phy.RadioParams{}, fmt.Errorf("max_gain_db must be non-negative, got %v", maxGainDB)
			}
			params := paramsFor(NewFading(studyTwoRay(), k, maxGainDB, env.Seed), rx, cs)
			common(&params, p)
			return params, p.Err()
		}
	}
	registry.MustRegister("ricean", fading(6, false))
	registry.MustRegister("rayleigh", fading(0, true))
}
