package radio

import (
	"testing"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

type countingReceiver struct{ got int }

func (c *countingReceiver) OnReceive(any, pkt.NodeID, float64) { c.got++ }
func (c *countingReceiver) OnChannelBusy()                     {}
func (c *countingReceiver) OnChannelIdle()                     {}

// TestStochasticGridBruteforceParity is the padding-bound acceptance test:
// with shadowing or fading a lucky link can clear the carrier-sense
// threshold from beyond the nominal CS range, so the spatial index widens
// its query by the model's declared MaxGainLinear. Replaying identical
// random transmission scripts with the index on and off — in both
// reception modes — must produce identical accounting; a missed candidate
// would show up as a delivery/collision mismatch. (Content-derived draws
// are what make this testable at all: the two paths probe different
// candidate sets but agree on every probed leg.)
func TestStochasticGridBruteforceParity(t *testing.T) {
	for _, tc := range []struct {
		model  string
		params map[string]float64
		sinr   bool
	}{
		{"shadowing", map[string]float64{"sigma_db": 8, "max_dev_db": 16}, false},
		{"shadowing", map[string]float64{"sigma_db": 8, "max_dev_db": 16}, true},
		{"ricean", map[string]float64{"max_gain_db": 10}, false},
		{"rayleigh", nil, true},
	} {
		name := tc.model
		if tc.sinr {
			name += "-sinr"
		}
		t.Run(name, func(t *testing.T) {
			const nodes = 45
			params, err := New(tc.model, Env{Seed: 77}, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(19)
			model := mobility.RandomWaypoint{Area: geo.Rect{W: 2500, H: 2500}, MinSpeed: 1, MaxSpeed: 20}
			tracks, err := model.Generate(nodes, 120*sim.Second, rng.ForkNamed("mobility"))
			if err != nil {
				t.Fatal(err)
			}
			type shot struct {
				at  sim.Time
				who pkt.NodeID
				dur sim.Duration
			}
			script := make([]shot, 300)
			srng := rng.ForkNamed("script")
			for i := range script {
				script[i] = shot{
					at:  sim.Time(0).Add(srng.DurationUniform(0, 110*sim.Second)),
					who: pkt.NodeID(srng.Intn(nodes)),
					dur: srng.DurationUniform(sim.Millisecond, 4*sim.Millisecond),
				}
			}
			run := func(cfg phy.Config) (*phy.Channel, []int) {
				eng := sim.NewEngine()
				ch := phy.NewChannelWithConfig(eng, params, cfg)
				rcvs := make([]*countingReceiver, nodes)
				for i, tr := range tracks {
					rcvs[i] = &countingReceiver{}
					ch.AttachRadio(pkt.NodeID(i), mobility.NewCursor(tr).At, rcvs[i])
				}
				for _, s := range script {
					s := s
					eng.Schedule(s.at, func() {
						r := ch.Radio(s.who)
						if !r.Transmitting() {
							r.Transmit(int(s.who), s.dur)
						}
					})
				}
				if err := eng.Run(sim.At(120)); err != nil {
					t.Fatal(err)
				}
				got := make([]int, nodes)
				for i, r := range rcvs {
					got[i] = r.got
				}
				return ch, got
			}
			bound := mobility.MaxTrackSpeed(tracks)
			grid, gridGot := run(phy.Config{ReindexInterval: sim.Second, SpeedBound: bound, SINR: tc.sinr})
			brute, bruteGot := run(phy.Config{BruteForce: true, SINR: tc.sinr})
			if grid.Transmissions != brute.Transmissions ||
				grid.Deliveries != brute.Deliveries ||
				grid.Collisions != brute.Collisions ||
				grid.Captures != brute.Captures {
				t.Fatalf("counter mismatch: grid tx=%d dlv=%d col=%d cap=%d, brute tx=%d dlv=%d col=%d cap=%d",
					grid.Transmissions, grid.Deliveries, grid.Collisions, grid.Captures,
					brute.Transmissions, brute.Deliveries, brute.Collisions, brute.Captures)
			}
			if grid.Deliveries == 0 {
				t.Fatal("degenerate scenario: nothing delivered")
			}
			for i := range gridGot {
				if gridGot[i] != bruteGot[i] {
					t.Fatalf("radio %d: grid received %d, brute %d", i, gridGot[i], bruteGot[i])
				}
			}
			if grid.Reindexes == 0 {
				t.Fatal("spatial index never built")
			}
		})
	}
}
