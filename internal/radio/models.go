package radio

import (
	"fmt"
	"math"
	"sync"

	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/sim"
)

// dbToLinear converts a power deviation in dB to a linear factor.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// gaussPair turns one content-derived seed into a pair of independent
// standard-normal draws (Box-Muller over two splitmix uniforms). Pure
// function of the seed: the cross-process determinism of the stochastic
// models reduces to the determinism of sim.DeriveSeed*.
func gaussPair(seed int64) (float64, float64) {
	u1 := sim.SeedUniform(seed)
	u2 := sim.SeedUniform(sim.DeriveSeedValues(seed, 1))
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	return r * math.Cos(theta), r * math.Sin(theta)
}

// Shadowing is log-normal shadowing around a nominal path-loss model: each
// link i–j carries a static power deviation dev(i,j) dB ~ N(0, SigmaDB²),
// clamped to ±MaxDevDB, drawn content-derived from the run seed via
// sim.DeriveSeed(seed, "shadow|i|j") with i < j — so the deviation field
// is symmetric, identical across processes, independent of probe order
// (grid and brute-force transmit paths see the same links), and stable
// under campaign checkpoint/resume. RxPower reports the nominal (median)
// power; the channel applies the per-link draw through LinkRxPower.
type Shadowing struct {
	Base     phy.Propagation
	SigmaDB  float64
	MaxDevDB float64
	Seed     int64

	// cache memoises per-link linear gains. A simulation run owns its
	// RadioParams (scenario.Generate builds fresh ones per run), but the
	// parallel transmit fan-out probes links from a worker pool, so the
	// map is guarded; the draw itself is a pure function of (seed, link),
	// so a racing double-compute stores the same value twice.
	mu    sync.RWMutex
	cache map[uint64]float64
}

// NewShadowing builds the shadowing wrapper; deviations derive from seed.
func NewShadowing(base phy.Propagation, sigmaDB, maxDevDB float64, seed int64) *Shadowing {
	return &Shadowing{
		Base:     base,
		SigmaDB:  sigmaDB,
		MaxDevDB: maxDevDB,
		Seed:     seed,
		cache:    make(map[uint64]float64),
	}
}

// RxPower implements phy.Propagation with the nominal (median) power.
func (s *Shadowing) RxPower(txPower, d float64) float64 { return s.Base.RxPower(txPower, d) }

// LinkGain returns the linear power factor of link a–b (exported for
// tests and for composition by external models).
func (s *Shadowing) LinkGain(a, b pkt.NodeID) float64 {
	i, j := a, b
	if j < i {
		i, j = j, i
	}
	key := uint64(uint32(i))<<32 | uint64(uint32(j))
	s.mu.RLock()
	g, ok := s.cache[key]
	s.mu.RUnlock()
	if ok {
		return g
	}
	z, _ := gaussPair(sim.DeriveSeed(s.Seed, fmt.Sprintf("shadow|%d|%d", i, j)))
	dev := z * s.SigmaDB
	if dev > s.MaxDevDB {
		dev = s.MaxDevDB
	} else if dev < -s.MaxDevDB {
		dev = -s.MaxDevDB
	}
	g = dbToLinear(dev)
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[uint64]float64)
	}
	s.cache[key] = g
	s.mu.Unlock()
	return g
}

// ConcurrentSafe implements phy.ConcurrentPropagation: the gain cache is
// mutex-guarded and every draw is a pure function of (seed, link).
func (s *Shadowing) ConcurrentSafe() {}

// LinkRxPower implements phy.LinkPropagation.
func (s *Shadowing) LinkRxPower(txPower, d float64, from, to pkt.NodeID, _ uint64) float64 {
	return s.Base.RxPower(txPower, d) * s.LinkGain(from, to)
}

// MaxGainLinear implements phy.GainBounded: the clamp is the bound.
func (s *Shadowing) MaxGainLinear() float64 { return dbToLinear(s.MaxDevDB) }

// Fading is small-scale Ricean fading (K = 0 degenerates to Rayleigh)
// around a nominal model: every (transmission, receiver) leg draws an
// independent unit-mean power factor
//
//	g = ((x+√(2K))² + y²) / (2(K+1)),  x, y ~ N(0, 1)
//
// clamped above at MaxGain, with (x, y) content-derived from
// sim.DeriveSeedValues(seed, from, to, txSeq). Keying the draw on the
// channel-wide transmission sequence — not on evaluation order — is what
// keeps the spatial-index and brute-force transmit paths bit-identical:
// they probe different candidate sets but agree on every probed leg.
type Fading struct {
	Base    phy.Propagation
	K       float64 // linear Rice factor (0 = Rayleigh)
	MaxGain float64 // linear clamp on the power factor
	Seed    int64
}

// NewFading builds the fading wrapper; maxGainDB clamps the upward draws.
func NewFading(base phy.Propagation, k, maxGainDB float64, seed int64) *Fading {
	return &Fading{
		Base:    base,
		K:       k,
		MaxGain: dbToLinear(maxGainDB),
		Seed:    sim.DeriveSeed(seed, "fade"),
	}
}

// RxPower implements phy.Propagation with the nominal (unit-mean) power.
func (f *Fading) RxPower(txPower, d float64) float64 { return f.Base.RxPower(txPower, d) }

// LegGain returns the fading power factor of one transmission leg
// (exported for tests).
func (f *Fading) LegGain(from, to pkt.NodeID, txSeq uint64) float64 {
	x, y := gaussPair(sim.DeriveSeedValues(f.Seed, int64(from), int64(to), int64(txSeq)))
	los := math.Sqrt(2 * f.K)
	g := ((x+los)*(x+los) + y*y) / (2 * (f.K + 1))
	if g > f.MaxGain {
		g = f.MaxGain
	}
	return g
}

// LinkRxPower implements phy.LinkPropagation.
func (f *Fading) LinkRxPower(txPower, d float64, from, to pkt.NodeID, txSeq uint64) float64 {
	return f.Base.RxPower(txPower, d) * f.LegGain(from, to, txSeq)
}

// MaxGainLinear implements phy.GainBounded.
func (f *Fading) MaxGainLinear() float64 { return f.MaxGain }

// ConcurrentSafe implements phy.ConcurrentPropagation: every leg draw is a
// stateless pure function of (seed, from, to, txSeq).
func (f *Fading) ConcurrentSafe() {}
