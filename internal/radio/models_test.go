package radio

import (
	"math"
	"testing"

	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
)

// linkProp resolves a model and returns its LinkPropagation view.
func linkProp(t *testing.T, name string, seed int64, params map[string]float64) (phy.RadioParams, phy.LinkPropagation) {
	t.Helper()
	p, err := New(name, Env{Seed: seed}, params)
	if err != nil {
		t.Fatal(err)
	}
	lp, ok := p.Prop.(phy.LinkPropagation)
	if !ok {
		t.Fatalf("%s does not implement LinkPropagation", name)
	}
	return p, lp
}

// TestShadowingCrossProcessDeterminism: two independent resolutions from
// the same run seed must produce identical per-link powers (the draws are
// content-derived, so "independent resolution" is exactly what a second
// process — or a campaign resume — does), and a different seed must
// produce a different deviation field.
func TestShadowingCrossProcessDeterminism(t *testing.T) {
	pa, a := linkProp(t, "shadowing", 42, nil)
	_, b := linkProp(t, "shadowing", 42, nil)
	_, c := linkProp(t, "shadowing", 43, nil)
	diff := 0
	for i := pkt.NodeID(0); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			pw := a.LinkRxPower(pa.TxPower, 200, i, j, 1)
			if pw != b.LinkRxPower(pa.TxPower, 200, i, j, 1) {
				t.Fatalf("link %d-%d: same seed, different power", i, j)
			}
			// txSeq must not matter: shadowing is static per link.
			if pw != a.LinkRxPower(pa.TxPower, 200, i, j, 99) {
				t.Fatalf("link %d-%d: shadowing varies with txSeq", i, j)
			}
			// Symmetric field: i→j and j→i share one deviation.
			if pw != a.LinkRxPower(pa.TxPower, 200, j, i, 1) {
				t.Fatalf("link %d-%d: asymmetric shadowing", i, j)
			}
			if pw != c.LinkRxPower(pa.TxPower, 200, i, j, 1) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different run seeds produced an identical deviation field")
	}
}

// TestFadingCrossProcessDeterminism: per-reception draws replay identically
// from (seed, from, to, txSeq) and vary with every component.
func TestFadingCrossProcessDeterminism(t *testing.T) {
	for _, name := range []string{"ricean", "rayleigh"} {
		pa, a := linkProp(t, name, 7, nil)
		_, b := linkProp(t, name, 7, nil)
		_, c := linkProp(t, name, 8, nil)
		diffSeed, diffSeq := 0, 0
		for seq := uint64(1); seq <= 50; seq++ {
			pw := a.LinkRxPower(pa.TxPower, 150, 3, 4, seq)
			if pw != b.LinkRxPower(pa.TxPower, 150, 3, 4, seq) {
				t.Fatalf("%s: same (seed,leg,seq), different power", name)
			}
			if pw != c.LinkRxPower(pa.TxPower, 150, 3, 4, seq) {
				diffSeed++
			}
			if pw != a.LinkRxPower(pa.TxPower, 150, 3, 4, seq+1000) {
				diffSeq++
			}
		}
		if diffSeed == 0 {
			t.Fatalf("%s: run seed does not shape fading", name)
		}
		if diffSeq == 0 {
			t.Fatalf("%s: transmission sequence does not shape fading", name)
		}
	}
}

// TestStochasticGainClamped: no draw may exceed the declared MaxGainLinear
// bound — the contract that keeps the spatial index's padded query exact.
func TestStochasticGainClamped(t *testing.T) {
	for _, name := range []string{"shadowing", "ricean", "rayleigh"} {
		p, lp := linkProp(t, name, 11, nil)
		bound := phy.MaxGain(p.Prop)
		if bound < 1 {
			t.Fatalf("%s: bound %v < 1", name, bound)
		}
		nominal := p.Prop.RxPower(p.TxPower, 300)
		for i := pkt.NodeID(0); i < 40; i++ {
			for seq := uint64(1); seq <= 25; seq++ {
				pw := lp.LinkRxPower(p.TxPower, 300, i, i+1, seq)
				if pw > nominal*bound*(1+1e-12) {
					t.Fatalf("%s: draw %g exceeds nominal %g × bound %g", name, pw, nominal, bound)
				}
			}
		}
	}
}

// TestFadingUnitMean: the unclamped Ricean/Rayleigh power factor is
// unit-mean by construction; with the default 6 dB clamp the sample mean
// over many legs must stay near (slightly below) 1, so fading models do
// not silently shift the link budget.
func TestFadingUnitMean(t *testing.T) {
	for _, name := range []string{"ricean", "rayleigh"} {
		p, _ := linkProp(t, name, 5, map[string]float64{"max_gain_db": 30})
		f := p.Prop.(*Fading)
		sum := 0.0
		const n = 20_000
		for i := 0; i < n; i++ {
			sum += f.LegGain(1, 2, uint64(i))
		}
		if mean := sum / n; mean < 0.93 || mean > 1.07 {
			t.Fatalf("%s: mean fading gain %v, want ≈1", name, mean)
		}
	}
}

// TestShadowingDeviationSpread: with a generous clamp the deviations'
// sample standard deviation tracks sigma_db.
func TestShadowingDeviationSpread(t *testing.T) {
	p, err := New("shadowing", Env{Seed: 3}, map[string]float64{"sigma_db": 6, "max_dev_db": 40})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Prop.(*Shadowing)
	var sum, sumSq float64
	n := 0
	for i := pkt.NodeID(0); i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			dev := 10 * math.Log10(s.LinkGain(i, j))
			sum += dev
			sumSq += dev * dev
			n++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.5 {
		t.Fatalf("deviation mean %v dB, want ≈0", mean)
	}
	if sd < 5.4 || sd > 6.6 {
		t.Fatalf("deviation sd %v dB, want ≈6", sd)
	}
}

// TestRiceanConcentratesAroundLOS: a strong Rice factor keeps draws near
// unity while Rayleigh spreads them — the K knob must actually matter.
func TestRiceanConcentratesAroundLOS(t *testing.T) {
	strong, err := New("ricean", Env{Seed: 2}, map[string]float64{"k_db": 15})
	if err != nil {
		t.Fatal(err)
	}
	ray, err := New("rayleigh", Env{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(p phy.RadioParams) float64 {
		f := p.Prop.(*Fading)
		var sum, sumSq float64
		const n = 5000
		for i := 0; i < n; i++ {
			g := f.LegGain(0, 1, uint64(i))
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	if vs, vr := varOf(strong), varOf(ray); vs >= vr/2 {
		t.Fatalf("K=15 dB variance %v not well below Rayleigh %v", vs, vr)
	}
}
