package adhocsim_test

import (
	"reflect"
	"testing"

	"adhocsim"
)

// TestZeroRadioSpecCompilesToNamedDefault: the zero-valued RadioSpec and
// the explicitly-named default model must produce reflect.DeepEqual
// end-to-end Results — the golden runs above then pin that shared path to
// the pre-refactor capture bit-for-bit.
func TestZeroRadioSpecCompilesToNamedDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("two 60 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 60 * adhocsim.Second
	zero, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec.Radio = adhocsim.RadioSpec{Name: "tworay"}
	named, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, named) {
		t.Fatalf("named tworay diverges from the zero-valued RadioSpec:\nzero  %+v\nnamed %+v", zero, named)
	}
}

// seedGolden pins the end-to-end results of the study configuration (40
// nodes, 1500×300 m, seed 1) over a 150 s horizon, captured on the
// pre-registry scenario layer (commit 4731a20). The scenario-model
// refactor — registry-backed mobility/traffic specs replacing the
// hard-wired random-waypoint/CBR path — must compile the default spec
// bit-identically, and the radio-model refactor (registry-backed
// RadioSpec replacing the hard-wired two-ray parameter derivation, plus
// the optional SINR reception path) must leave the zero-valued default —
// two-ray ground, pairwise capture — untouched, so every counter and
// every float here must match exactly. If a deliberate simulator change
// invalidates these numbers, re-capture them with the old harness
// semantics in mind and say so in the commit.
var seedGolden = map[string]struct {
	dataSent, dataDelivered uint64
	routingTxPackets        uint64
	macCtlFrames            uint64
	pdr, avgDelay, avgHops  float64
	drops                   map[string]uint64
}{
	"DSR": {
		dataSent:         3927,
		dataDelivered:    3795,
		routingTxPackets: 4788,
		macCtlFrames:     42063,
		pdr:              0.9663865546218487,
		avgDelay:         0.009146865496179183,
		avgHops:          2.8086956521739133,
		drops:            map[string]uint64{"salvage-failed": 132},
	},
	"AODV": {
		dataSent:         3927,
		dataDelivered:    3837,
		routingTxPackets: 6344,
		macCtlFrames:     36148,
		pdr:              0.9770817417876242,
		avgDelay:         0.05005789578707323,
		avgHops:          2.799583007557988,
		drops:            map[string]uint64{"mac-retries": 86, "no-route": 1},
	},
}

// TestSeedParityDefaultStudyRuns is the parity guard for the scenario-model
// refactor: the default study spec (zero-valued mobility/traffic model
// specs → random waypoint + CBR) compiled through the registry path must
// reproduce the pre-refactor runs bit-for-bit.
func TestSeedParityDefaultStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("two 150 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 150 * adhocsim.Second
	for proto, want := range seedGolden {
		proto, want := proto, want
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			res, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: proto, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.DataSent != want.dataSent || res.DataDelivered != want.dataDelivered {
				t.Errorf("data sent/delivered = %d/%d, want %d/%d",
					res.DataSent, res.DataDelivered, want.dataSent, want.dataDelivered)
			}
			if res.RoutingTxPackets != want.routingTxPackets {
				t.Errorf("routing tx = %d, want %d", res.RoutingTxPackets, want.routingTxPackets)
			}
			if res.MacCtlFrames != want.macCtlFrames {
				t.Errorf("mac ctl frames = %d, want %d", res.MacCtlFrames, want.macCtlFrames)
			}
			if res.PDR != want.pdr {
				t.Errorf("pdr = %v, want %v", res.PDR, want.pdr)
			}
			if res.AvgDelay != want.avgDelay {
				t.Errorf("avg delay = %v, want %v", res.AvgDelay, want.avgDelay)
			}
			if res.AvgHops != want.avgHops {
				t.Errorf("avg hops = %v, want %v", res.AvgHops, want.avgHops)
			}
			if len(res.Drops) != len(want.drops) {
				t.Errorf("drops = %v, want %v", res.Drops, want.drops)
			} else {
				for reason, n := range want.drops {
					if res.Drops[adhocsim.DropReason(reason)] != n {
						t.Errorf("drops[%s] = %d, want %d", reason, res.Drops[adhocsim.DropReason(reason)], n)
					}
				}
			}
		})
	}
}
