package adhocsim_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"adhocsim"
)

// TestParallelGoldenSeedParity: the parallel executor (fan-out pool +
// pipelined reindex) must reproduce the golden DSR/AODV seed-1 study runs
// bit-for-bit. This is the strongest parity statement in the suite: the
// golden numbers were captured on the original single-threaded engine, so
// matching them proves workers=8 dispatches the identical event sequence —
// not merely a self-consistent one.
func TestParallelGoldenSeedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("two 150 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 150 * adhocsim.Second
	for proto, want := range seedGolden {
		proto, want := proto, want
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			res, err := adhocsim.Run(adhocsim.RunConfig{
				Spec: spec, Protocol: proto, Seed: 1,
				Phy: adhocsim.PhyConfig{Workers: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DataSent != want.dataSent || res.DataDelivered != want.dataDelivered {
				t.Errorf("data sent/delivered = %d/%d, want %d/%d",
					res.DataSent, res.DataDelivered, want.dataSent, want.dataDelivered)
			}
			if res.RoutingTxPackets != want.routingTxPackets {
				t.Errorf("routing tx = %d, want %d", res.RoutingTxPackets, want.routingTxPackets)
			}
			if res.MacCtlFrames != want.macCtlFrames {
				t.Errorf("mac ctl frames = %d, want %d", res.MacCtlFrames, want.macCtlFrames)
			}
			if res.PDR != want.pdr || res.AvgDelay != want.avgDelay || res.AvgHops != want.avgHops {
				t.Errorf("pdr/delay/hops = %v/%v/%v, want %v/%v/%v",
					res.PDR, res.AvgDelay, res.AvgHops, want.pdr, want.avgDelay, want.avgHops)
			}
		})
	}
}

// parallelFuzzSpec is a denser, shorter variant of the study scenario: 80
// nodes in the 1500×300 m strip put every transmit's candidate set well
// above the fan-out engagement threshold, so the pool genuinely runs
// (the 40-node default hovers at the threshold and can fall back inline).
func parallelFuzzSpec() adhocsim.Spec {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 80
	spec.Duration = 15 * adhocsim.Second
	spec.StartMin = 1 * adhocsim.Second
	spec.StartMax = 3 * adhocsim.Second
	return spec
}

// TestParallelParityFuzz sweeps the parallel executor across every axis it
// interacts with — both event queues, three propagation models (including
// the stateful shadowing cache and the stochastic ricean fader), and both
// reception models — asserting reflect.DeepEqual between workers=8 and the
// sequential path on the full Results struct.
func TestParallelParityFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("24 dense 15 s runs")
	}
	for _, sched := range []adhocsim.QueueKind{adhocsim.QueueHeap, adhocsim.QueueCalendar} {
		for _, model := range []string{"tworay", "shadowing", "ricean"} {
			for _, sinr := range []bool{false, true} {
				sched, model, sinr := sched, model, sinr
				name := fmt.Sprintf("%v/%s/sinr=%v", sched, model, sinr)
				t.Run(name, func(t *testing.T) {
					spec := parallelFuzzSpec()
					spec.Radio = adhocsim.RadioSpec{Name: model, SINR: sinr}
					seq, err := adhocsim.Run(adhocsim.RunConfig{
						Spec: spec, Protocol: adhocsim.AODV, Seed: 7,
						Phy: adhocsim.PhyConfig{Scheduler: sched},
					})
					if err != nil {
						t.Fatal(err)
					}
					par, err := adhocsim.Run(adhocsim.RunConfig{
						Spec: spec, Protocol: adhocsim.AODV, Seed: 7,
						Phy: adhocsim.PhyConfig{Scheduler: sched, Workers: 8},
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("workers=8 diverges from sequential:\nseq %+v\npar %+v", seq, par)
					}
				})
			}
		}
	}
}

// TestParallelNegativeWorkersRejected: the network layer refuses a
// negative worker count before any helper spins up.
func TestParallelNegativeWorkersRejected(t *testing.T) {
	spec := adhocsim.DefaultSpec()
	spec.Duration = 1 * adhocsim.Second
	_, err := adhocsim.Run(adhocsim.RunConfig{
		Spec: spec, Protocol: adhocsim.DSR, Seed: 1,
		Phy: adhocsim.PhyConfig{Workers: -2},
	})
	if err == nil {
		t.Fatal("negative worker count accepted")
	}
}

// TestParallelCancellationLeaksNothing: cancelling a parallel run mid-fly
// must surface context.Canceled and tear down every helper goroutine (the
// fan-out pool and the in-flight epoch build) — World.Run's deferred
// StopWorkers runs on the interrupt path too.
func TestParallelCancellationLeaksNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent cancellation run")
	}
	before := runtime.NumGoroutine()
	spec := parallelFuzzSpec()
	spec.Duration = 900 * adhocsim.Second
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	_, err := adhocsim.RunReplicatedContext(ctx, adhocsim.RunConfig{
		Spec: spec, Protocol: adhocsim.AODV, Seed: 3,
		Phy: adhocsim.PhyConfig{Workers: 4},
	}, []int64{3}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Helper goroutines exit asynchronously after StopWorkers returns the
	// run error; give the scheduler a moment before declaring a leak.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
