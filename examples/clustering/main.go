// Clustering example: watch CBRP organise a static network into clusters.
// It wires the stack manually (below the adhocsim facade) to inspect
// protocol state, then draws the cluster map as ASCII art.
//
//	go run ./examples/clustering
package main

import (
	"context"
	"fmt"
	"log"

	"adhocsim/internal/geo"
	"adhocsim/internal/mobility"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/pkt"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/sim"
)

func main() {
	const n = 30
	area := geo.Rect{W: 1200, H: 500}

	// A jittered grid keeps the picture readable.
	model := mobility.StaticGrid{Area: area, Jitter: 60}
	tracks, err := model.Generate(n, 0, sim.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	agents := make([]*cbrp.CBRP, n)
	world, err := network.NewWorld(network.Config{
		Tracks: tracks,
		Radio:  phy.DefaultParams(),
		Protocol: func(id pkt.NodeID) network.Protocol {
			agents[id] = cbrp.New(cbrp.Config{})
			return agents[id]
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	world.Start()

	// Let HELLO beacons run for 20 simulated seconds (about 10 rounds).
	if err := world.Run(context.Background(), sim.At(20)); err != nil {
		log.Fatal(err)
	}

	heads, members := 0, 0
	for _, a := range agents {
		switch a.Status() {
		case cbrp.Head:
			heads++
		case cbrp.Member:
			members++
		}
	}
	fmt.Printf("after 20 s of beaconing: %d cluster heads, %d members, %d undecided\n\n",
		heads, members, n-heads-members)

	// ASCII map: heads as capital letters, members in lowercase of their
	// (lowest-id) head's letter.
	const cols, rows = 60, 20
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	headLetter := map[pkt.NodeID]byte{}
	next := byte('A')
	for id, a := range agents {
		if a.Status() == cbrp.Head {
			headLetter[pkt.NodeID(id)] = next
			if next < 'Z' {
				next++
			}
		}
	}
	for id, a := range agents {
		p := tracks[id].At(0)
		c := int(p.X / area.W * (cols - 1))
		r := int(p.Y / area.H * (rows - 1))
		ch := byte('?')
		switch a.Status() {
		case cbrp.Head:
			ch = headLetter[pkt.NodeID(id)]
		case cbrp.Member:
			hs := a.Heads()
			if len(hs) > 0 {
				min := hs[0]
				for _, h := range hs {
					if h < min {
						min = h
					}
				}
				ch = headLetter[min] + ('a' - 'A')
			}
		}
		grid[rows-1-r][c] = ch
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Println("\ncapitals = cluster heads, lowercase = members of that head's cluster")

	fmt.Println("\nper-node roles:")
	for id, a := range agents {
		fmt.Printf("  n%-3d %-9s heads=%v\n", id, a.Status(), a.Heads())
	}
}
