// Quickstart: simulate one protocol on one scenario and print its metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adhocsim"
)

func main() {
	// The reconstructed study scenario, shrunk to finish in seconds:
	// 30 nodes roaming a 1000x300 m strip at up to 20 m/s, ten CBR flows.
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 30
	spec.Area = adhocsim.Rect{W: 1000, H: 300}
	spec.Duration = 120 * adhocsim.Second

	res, err := adhocsim.Run(adhocsim.RunConfig{
		Spec:     spec,
		Protocol: adhocsim.AODV,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AODV on the study scenario (120 s, 30 nodes, pause 0):")
	fmt.Printf("  sent %d, delivered %d  →  PDR %.1f%%\n", res.DataSent, res.DataDelivered, res.PDR*100)
	fmt.Printf("  average end-to-end delay %.1f ms\n", res.AvgDelay*1e3)
	fmt.Printf("  routing overhead %d transmissions (%.2f per delivered packet)\n",
		res.RoutingTxPackets, res.NormalizedRoutingLoad)
	fmt.Printf("  average route length %.2f hops (%.0f%% of packets took a shortest path)\n",
		res.AvgHops, res.PathOptimalityShare()*100)
}
