// Example campaign: replicate a two-protocol pause-time comparison until the
// packet-delivery estimate is trustworthy.
//
// Each (protocol, pause) cell replicates with deterministically derived
// seeds until the 95% confidence half-width of PDR drops to 5 percentage
// points — or the replication cap is hit. The run is checkpointed: kill it
// mid-flight and run it again, and it resumes from the journal with
// bit-identical results.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"adhocsim"
)

func main() {
	sc := adhocsim.DefaultSpec()
	sc.Nodes = 15
	sc.Area = adhocsim.Rect{W: 800, H: 300}
	sc.Duration = adhocsim.Seconds(60)
	sc.Sources = 5

	spec := adhocsim.CampaignSpec{
		Name:      "pause-replication",
		Scenario:  &sc,
		Protocols: []string{adhocsim.DSR, adhocsim.AODV},
		Axes: []adhocsim.CampaignAxis{
			{Name: "pause", Values: []float64{0, 60}},
		},
		MinReps: 2,
		MaxReps: 6,
		// Stop a cell early once PDR is known to ±5 percentage points.
		Epsilon: map[string]float64{"pdr": 5},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := adhocsim.RunCampaign(ctx, spec, adhocsim.CampaignOptions{
		JournalPath: "campaign.jsonl",
		OnProgress: func(s adhocsim.CampaignSnapshot) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d runs, %d/%d cells settled]   ",
				s.RunsDone, s.MaxRuns, s.CellsStopped, s.Cells)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		fmt.Fprintln(os.Stderr, "rerun to resume from campaign.jsonl")
		os.Exit(1)
	}

	fmt.Printf("%-8s %-10s %4s %-9s %16s %18s\n",
		"proto", "pause_s", "n", "stop", "pdr_%", "delay_ms")
	for _, cell := range res.Cells {
		pdr, delay := cell.Metrics["pdr"], cell.Metrics["delay"]
		fmt.Printf("%-8s %-10g %4d %-9s %8.1f ±%5.1f %9.2f ±%6.2f\n",
			cell.Protocol, cell.Point[0], cell.Reps, cell.StopReason,
			pdr.Mean, pdr.CI95, delay.Mean, delay.CI95)
	}
	_ = os.Remove("campaign.jsonl") // completed: the checkpoint is spent
}
