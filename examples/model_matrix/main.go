// Model-matrix example and CI smoke (`make scenario-smoke`): a tiny
// protocol × mobility-model × traffic-model campaign through the campaign
// engine. The study evaluated its protocols under exactly one workload
// shape — random-waypoint mobility driving CBR sources — although protocol
// rankings are known to be sensitive to both choices; the model registries
// make the sweep a two-line axis declaration.
//
//	go run ./examples/model_matrix
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"adhocsim"
)

func main() {
	spec := adhocsim.CampaignSpec{
		Name: "model-matrix",
		Base: adhocsim.CampaignScenarioPatch{
			Nodes:     intp(12),
			AreaW:     f64p(700),
			DurationS: f64p(20),
			Sources:   intp(3),
		},
		Protocols: []string{adhocsim.DSR, adhocsim.AODV},
		Axes: []adhocsim.CampaignAxis{
			{Name: "mobility", Models: []string{"waypoint", "gauss-markov", "manhattan"}},
			{Name: "traffic", Models: []string{"cbr", "poisson", "expoo"}},
		},
		MaxReps: 1,
	}

	res, err := adhocsim.RunCampaign(context.Background(), spec, adhocsim.CampaignOptions{
		OnProgress: func(s adhocsim.CampaignSnapshot) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d runs]   ", s.RunsDone, s.MaxRuns)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2 protocols × 3 mobility models × 3 traffic models (12 nodes, 20 s):")
	fmt.Printf("%-32s %8s %10s %8s\n", "cell", "PDR", "delay", "sent")
	distinct := make(map[string]bool)
	for _, cell := range res.Cells {
		pdr := cell.Metrics["pdr"]
		delay := cell.Metrics["delay"]
		fmt.Printf("%-32s %7.1f%% %8.1fms %8d\n",
			cell.Label, pdr.Mean, delay.Mean, cell.Merged.DataSent)
		if cell.Merged.DataSent == 0 {
			log.Fatalf("degenerate cell %q: no traffic", cell.Label)
		}
		distinct[fmt.Sprintf("%s|%.6f|%d", cell.Protocol, pdr.Mean, cell.Merged.DataSent)] = true
	}
	if want := 2 * 3 * 3; len(res.Cells) != want {
		log.Fatalf("expected %d cells, got %d", want, len(res.Cells))
	}
	// The matrix must actually vary the workload: if every model produced
	// the same metrics the registries would be decorative.
	if len(distinct) < len(res.Cells)/2 {
		log.Fatalf("model cells suspiciously identical (%d distinct of %d)", len(distinct), len(res.Cells))
	}
	fmt.Println("\nscenario-model smoke OK")
}

func intp(v int) *int         { return &v }
func f64p(v float64) *float64 { return &v }
