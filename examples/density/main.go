// Density example: how protocol behaviour changes with network size (the
// study's Figure 6 axis), here for DSR vs AODV with a fixed area so that
// adding nodes increases density and contention together.
//
//	go run ./examples/density
package main

import (
	"fmt"
	"log"

	"adhocsim"
)

func main() {
	opts := adhocsim.DefaultOptions()
	opts.Protocols = []string{adhocsim.DSR, adhocsim.AODV, adhocsim.CBRP}
	opts.Base.Duration = 100 * adhocsim.Second
	opts.Base.Sources = 8
	opts.Seeds = []int64{1, 2}

	nodes := []float64{10, 20, 30, 40}
	fmt.Println("sweeping node count", nodes, "...")
	sweep, err := adhocsim.DensitySweep(opts, nodes)
	if err != nil {
		log.Fatal(err)
	}

	for _, fig := range []adhocsim.Figure{
		{ID: "pdr", Title: "PDR vs node count", Metric: adhocsim.MetricPDR, Sweep: sweep},
		{ID: "nrl", Title: "Normalized routing load vs node count", Metric: adhocsim.MetricNRL, Sweep: sweep},
		{ID: "hops", Title: "Average hops vs node count", Metric: adhocsim.MetricAvgHops, Sweep: sweep},
	} {
		fmt.Println()
		fmt.Print(adhocsim.RenderFigure(fig))
	}

	fmt.Println("\nAt 10 nodes the 1500x300 m strip is frequently partitioned — every")
	fmt.Println("protocol loses packets to unreachable destinations. CBRP's clustering")
	fmt.Println("pays off as density rises: more redundant neighbours per cluster head")
	fmt.Println("means fewer RREQ retransmissions than blind flooding would cost.")
}
