// Radio-matrix example and CI smoke (`make radio-smoke`): a tiny
// protocol × radio-model campaign through the campaign engine, decoded
// under cumulative-interference SINR reception. The study evaluated its
// protocols on exactly one channel — two-ray ground with pairwise 10 dB
// capture — although reception quality is the first thing a real
// deployment changes under it; the radio registry makes the sweep a
// one-line axis declaration.
//
//	go run ./examples/radio_matrix
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"adhocsim"
)

func main() {
	spec := adhocsim.CampaignSpec{
		Name: "radio-matrix",
		Base: adhocsim.CampaignScenarioPatch{
			Nodes:     intp(12),
			AreaW:     f64p(700),
			DurationS: f64p(20),
			Sources:   intp(3),
			// SINR reception for every cell: the axis sweeps the
			// propagation model, the patch pins the reception model.
			Radio: &adhocsim.RadioSpec{SINR: true},
		},
		Protocols: []string{adhocsim.DSR, adhocsim.AODV},
		Axes: []adhocsim.CampaignAxis{
			{Name: "radio", Models: []string{"tworay", "freespace", "shadowing"}},
		},
		MaxReps: 1,
	}

	res, err := adhocsim.RunCampaign(context.Background(), spec, adhocsim.CampaignOptions{
		OnProgress: func(s adhocsim.CampaignSnapshot) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d runs]   ", s.RunsDone, s.MaxRuns)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2 protocols × 3 radio models under SINR reception (12 nodes, 20 s):")
	fmt.Printf("%-28s %8s %10s %8s\n", "cell", "PDR", "delay", "sent")
	distinct := make(map[string]bool)
	for _, cell := range res.Cells {
		pdr := cell.Metrics["pdr"]
		delay := cell.Metrics["delay"]
		fmt.Printf("%-28s %7.1f%% %8.1fms %8d\n",
			cell.Label, pdr.Mean, delay.Mean, cell.Merged.DataSent)
		if cell.Merged.DataSent == 0 {
			log.Fatalf("degenerate cell %q: no traffic", cell.Label)
		}
		distinct[fmt.Sprintf("%s|%.6f|%d", cell.Protocol, pdr.Mean, cell.Merged.DataDelivered)] = true
	}
	if want := 2 * 3; len(res.Cells) != want {
		log.Fatalf("expected %d cells, got %d", want, len(res.Cells))
	}
	// The matrix must actually vary the channel: if every radio model
	// produced the same metrics the registry would be decorative.
	if len(distinct) < len(res.Cells)/2 {
		log.Fatalf("radio cells suspiciously identical (%d distinct of %d)", len(distinct), len(res.Cells))
	}
	fmt.Println("\nradio-model smoke OK")
}

func intp(v int) *int         { return &v }
func f64p(v float64) *float64 { return &v }
