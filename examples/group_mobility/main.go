// Group-mobility example: the convoy/team scenario that motivates
// cluster-based routing. Nodes move in coherent groups (Reference Point
// Group Mobility) instead of independently; CBRP's clusters then map onto
// real structure, while DSR/AODV see fewer but burstier link breaks (whole
// groups part ways at once).
//
//	go run ./examples/group_mobility
package main

import (
	"fmt"
	"log"

	"adhocsim"
)

func main() {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 24
	spec.Area = adhocsim.Rect{W: 1200, H: 600}
	spec.Duration = 120 * adhocsim.Second
	spec.Sources = 8
	spec.MinSpeed, spec.MaxSpeed = 2, 10
	spec.Pause = 10 * adhocsim.Second
	spec.Mobility = adhocsim.MobilitySpec{
		Name: "rpgm", // Reference Point Group Mobility
		Params: map[string]float64{
			"groups":   4, // four 6-node teams
			"spread_m": 90,
		},
	}

	fmt.Println("four 6-node teams roaming a 1200x600 m area (RPGM):")
	fmt.Printf("%-8s %8s %10s %12s %10s\n", "proto", "PDR", "delay", "overhead", "NRL")
	for _, proto := range adhocsim.StudyProtocols() {
		res, err := adhocsim.RunReplicated(
			adhocsim.RunConfig{Spec: spec, Protocol: proto},
			[]int64{1, 2}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7.1f%% %8.1fms %9d tx %10.2f\n",
			proto, res.PDR*100, res.AvgDelay*1e3, res.RoutingTxPackets, res.NormalizedRoutingLoad)
	}
	fmt.Println("\nCompare with `go run ./examples/pause_sweep` (independent random")
	fmt.Println("waypoint): grouped motion favours clustering — CBRP's HELLO cost is")
	fmt.Println("amortized over stable intra-team links.")
}
