// Pause-sweep example: the study's headline experiment (Figures 1-4) at a
// reduced scale — all five protocols across the mobility axis.
//
//	go run ./examples/pause_sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"adhocsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := adhocsim.DefaultOptions()
	opts.Base.Nodes = 25
	opts.Base.Area = adhocsim.Rect{W: 900, H: 300}
	opts.Base.Duration = 100 * adhocsim.Second
	opts.Base.Sources = 8
	opts.Seeds = []int64{1, 2}
	opts.OnProgress = adhocsim.ProgressPrinter(os.Stderr)

	// Pause times from "always moving" to "static for the whole run".
	pauses := []float64{0, 25, 50, 100}

	fmt.Println("running", len(opts.Protocols), "protocols x", len(pauses), "pause times x", len(opts.Seeds), "seeds...")
	sweep, err := adhocsim.Sweep(ctx, opts, adhocsim.PauseAxis(pauses))
	if err != nil {
		log.Fatal(err)
	}

	for _, fig := range []adhocsim.Figure{
		{ID: "pdr", Title: "Packet delivery ratio vs pause time", Metric: adhocsim.MetricPDR, Sweep: sweep},
		{ID: "overhead", Title: "Routing overhead vs pause time", Metric: adhocsim.MetricOverhead, Sweep: sweep},
		{ID: "delay", Title: "End-to-end delay vs pause time", Metric: adhocsim.MetricDelay, Sweep: sweep},
	} {
		fmt.Println()
		fmt.Print(adhocsim.RenderFigure(fig))
	}

	fmt.Println("\nReading the shape: DSR should show the least overhead (source routing")
	fmt.Println("+ caching), AODV more RREQ traffic at pause 0, DSDV roughly flat")
	fmt.Println("overhead but the lowest delivery under constant motion.")
}
