// Transmission-range sweep: an experiment the v1 API could not express.
// The study fixed the radio range at 250 m; here we sweep it (with the
// carrier-sense range following at its default 2.2× ratio) to watch the
// delivery/overhead trade-off as the network thins out, with live progress
// reporting, Ctrl-C cancellation, and JSON export of the sweep.
//
//	go run ./examples/txrange_sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"adhocsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := adhocsim.DefaultOptions()
	opts.Protocols = []string{adhocsim.DSR, adhocsim.AODV}
	opts.Base.Nodes = 25
	opts.Base.Area = adhocsim.Rect{W: 900, H: 300}
	opts.Base.Duration = 100 * adhocsim.Second
	opts.Base.Sources = 8
	opts.Seeds = []int64{1, 2}
	opts.OnProgress = adhocsim.ProgressPrinter(os.Stderr)

	// 120 m barely spans the strip's height; 250 m is the study radio.
	axis := adhocsim.TxRangeAxis([]float64{120, 160, 200, 250})
	sweep, err := adhocsim.Sweep(ctx, opts, axis)
	if err != nil {
		log.Fatal(err)
	}

	for _, fig := range []adhocsim.Figure{
		{ID: "pdr", Title: "Packet delivery ratio vs radio range", Metric: adhocsim.MetricPDR, Sweep: sweep},
		{ID: "hops", Title: "Average route length vs radio range", Metric: adhocsim.MetricAvgHops, Sweep: sweep},
		{ID: "overhead", Title: "Routing overhead vs radio range", Metric: adhocsim.MetricOverhead, Sweep: sweep},
	} {
		fmt.Println()
		fmt.Print(adhocsim.RenderFigure(fig))
	}

	// The whole sweep serializes to JSON for downstream plotting.
	b, err := adhocsim.SweepJSON(sweep)
	if err != nil {
		log.Fatal(err)
	}
	const out = "txrange_sweep.json"
	if err := os.WriteFile(out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", out, len(b))

	fmt.Println("\nReading the shape: short radios fragment the 900x300 m strip —")
	fmt.Println("delivery collapses and every delivered packet needs more hops; as")
	fmt.Println("range grows the network contracts toward one hop and discovery")
	fmt.Println("traffic shrinks.")
}
