package adhocsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"adhocsim"
)

func smallSpec() adhocsim.Spec {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 15
	spec.Area = adhocsim.Rect{W: 700, H: 300}
	spec.Duration = 40 * adhocsim.Second
	spec.Sources = 4
	return spec
}

func TestFacadeRun(t *testing.T) {
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: smallSpec(), Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 || res.PDR <= 0 {
		t.Fatalf("degenerate results: %+v", res)
	}
}

func TestFacadeProtocolLists(t *testing.T) {
	study := adhocsim.StudyProtocols()
	if len(study) != 5 {
		t.Fatalf("study protocols = %v", study)
	}
	all := adhocsim.AllProtocols()
	if len(all) != 6 {
		t.Fatalf("all protocols = %v", all)
	}
	for _, p := range all {
		if p == "" {
			t.Fatal("empty protocol name")
		}
	}
}

func TestFacadeCompare(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.DSR, adhocsim.DSDV}
	opts.Seeds = []int64{1}
	res, err := adhocsim.Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("compare returned %d protocols", len(res))
	}
	for p, r := range res {
		if r.DataSent == 0 {
			t.Fatalf("%s sent nothing", p)
		}
	}
}

func TestFacadeSweepAndRender(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.AODV}
	opts.Seeds = []int64{1}
	sweep, err := adhocsim.PauseSweep(opts, []float64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	fig := adhocsim.Figure{ID: "t", Title: "test", Metric: adhocsim.MetricPDR, Sweep: sweep}
	txt := adhocsim.RenderFigure(fig)
	if !strings.Contains(txt, "AODV") || !strings.Contains(txt, "pause_s") {
		t.Fatalf("render missing columns:\n%s", txt)
	}
	csv := adhocsim.RenderFigureCSV(fig)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2 { // header + 2 x-points × 1 protocol
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "pause_s,protocol,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestFacadeSeconds(t *testing.T) {
	if adhocsim.Seconds(2) != 2*adhocsim.Second {
		t.Fatal("Seconds conversion")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	bad := adhocsim.DefaultSpec()
	bad.Nodes = 1 // invalid
	if _, err := adhocsim.Run(adhocsim.RunConfig{Spec: bad, Protocol: adhocsim.DSR, Seed: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := adhocsim.Run(adhocsim.RunConfig{Spec: smallSpec(), Protocol: "NOPE", Seed: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := adhocsim.RunReplicated(adhocsim.RunConfig{Spec: bad, Protocol: adhocsim.DSR}, []int64{1, 2}, 2); err == nil {
		t.Fatal("replicated run swallowed the error")
	}
	opts := adhocsim.DefaultOptions()
	opts.Base = bad
	if _, err := adhocsim.PauseSweep(opts, []float64{0}); err == nil {
		t.Fatal("sweep swallowed the error")
	}
}

// stubFlood is a minimal routing protocol implemented purely against the
// facade's extension surface (no internal imports): TTL-scoped flooding
// with duplicate suppression. It exists to prove that a protocol registered
// from outside internal/core runs through Run and Compare like a built-in.
type stubFlood struct {
	env  adhocsim.Env
	seen map[uint64]bool
}

func (s *stubFlood) key(p *adhocsim.Packet) uint64 {
	return uint64(p.Src)<<32 | uint64(p.Seq)
}

func (s *stubFlood) Start(env adhocsim.Env) {
	s.env = env
	s.seen = make(map[uint64]bool)
}

func (s *stubFlood) SendData(p *adhocsim.Packet) {
	s.seen[s.key(p)] = true
	s.env.SendMac(p, adhocsim.Broadcast)
}

func (s *stubFlood) Recv(p *adhocsim.Packet, from adhocsim.NodeID, _ float64) {
	if s.seen[s.key(p)] {
		return
	}
	s.seen[s.key(p)] = true
	p.Hops++
	if p.Dst == s.env.ID() {
		s.env.Deliver(p, from)
		return
	}
	p.TTL--
	if p.Expired() {
		s.env.Drop(p, adhocsim.DropReason("stub-ttl"))
		return
	}
	s.env.SendMac(p.Clone(), adhocsim.Broadcast)
}

func (s *stubFlood) Snoop(*adhocsim.Packet, adhocsim.NodeID, adhocsim.NodeID, float64) {}
func (s *stubFlood) MacSent(*adhocsim.Packet, adhocsim.NodeID)                         {}
func (s *stubFlood) MacFailed(*adhocsim.Packet, adhocsim.NodeID)                       {}

func registered(name string) bool {
	for _, p := range adhocsim.RegisteredProtocols() {
		if p == name {
			return true
		}
	}
	return false
}

func TestRegisterProtocolRoundTrip(t *testing.T) {
	const name = "STUBFLOOD"
	stubBuilder := func(adhocsim.BuildContext) (adhocsim.ProtocolFactory, error) {
		return func(adhocsim.NodeID) adhocsim.Protocol { return &stubFlood{} }, nil
	}
	// The registry is process-global and append-only, so under
	// `go test -count=N` the stub persists across iterations.
	if !registered(name) {
		if err := adhocsim.RegisterProtocol(name, stubBuilder); err != nil {
			t.Fatal(err)
		}
	}
	if err := adhocsim.RegisterProtocol(name, stubBuilder); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if !registered(name) {
		t.Fatalf("%s missing from RegisteredProtocols", name)
	}

	// The registered protocol runs through Run like a built-in…
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: smallSpec(), Protocol: name, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 || res.DataDelivered == 0 {
		t.Fatalf("stub protocol moved no traffic: %+v", res)
	}

	// …and appears in Compare output next to the study protocols.
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.DSR, name}
	opts.Seeds = []int64{1}
	cmp, err := adhocsim.Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cmp[name]; !ok {
		t.Fatalf("Compare output missing %s: %v", name, cmp)
	}
	if cmp[name].DataSent == 0 {
		t.Fatalf("%s sent nothing in Compare", name)
	}
}

// TestFacadeTxRangeSweep sweeps an axis the v1 facade could not express.
func TestFacadeTxRangeSweep(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.DSR}
	opts.Seeds = []int64{1}
	sweep, err := adhocsim.Sweep(context.Background(), opts, adhocsim.TxRangeAxis([]float64{150, 250}))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.XLabel != "txrange_m" || len(sweep.Cells[adhocsim.DSR]) != 2 {
		t.Fatalf("sweep = %+v", sweep)
	}
	b, err := adhocsim.SweepJSON(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("SweepJSON produced invalid JSON:\n%s", b)
	}
	fig := adhocsim.Figure{ID: "tx", Title: "PDR vs range", Metric: adhocsim.MetricPDR, Sweep: sweep}
	fb, err := adhocsim.FigureJSON(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fb), "txrange_m") {
		t.Fatalf("figure JSON missing axis label:\n%s", fb)
	}
}

func TestFacadeSweepCancellation(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Protocols = []string{adhocsim.DSR}
	opts.Seeds = []int64{1, 2, 3}
	opts.Base.Duration = 600 * adhocsim.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := adhocsim.Sweep(ctx, opts, adhocsim.PauseAxis([]float64{0, 600}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeRunReplicatedDefaultSeeds(t *testing.T) {
	// Nil seed list must still run (single default seed).
	res, err := adhocsim.RunReplicated(adhocsim.RunConfig{Spec: smallSpec(), Protocol: adhocsim.DSDV}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("no traffic with default seeds")
	}
}
