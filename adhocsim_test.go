package adhocsim_test

import (
	"strings"
	"testing"

	"adhocsim"
)

func smallSpec() adhocsim.Spec {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 15
	spec.Area = adhocsim.Rect{W: 700, H: 300}
	spec.Duration = 40 * adhocsim.Second
	spec.Sources = 4
	return spec
}

func TestFacadeRun(t *testing.T) {
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: smallSpec(), Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 || res.PDR <= 0 {
		t.Fatalf("degenerate results: %+v", res)
	}
}

func TestFacadeProtocolLists(t *testing.T) {
	study := adhocsim.StudyProtocols()
	if len(study) != 5 {
		t.Fatalf("study protocols = %v", study)
	}
	all := adhocsim.AllProtocols()
	if len(all) != 6 {
		t.Fatalf("all protocols = %v", all)
	}
	for _, p := range all {
		if p == "" {
			t.Fatal("empty protocol name")
		}
	}
}

func TestFacadeCompare(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.DSR, adhocsim.DSDV}
	opts.Seeds = []int64{1}
	res, err := adhocsim.Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("compare returned %d protocols", len(res))
	}
	for p, r := range res {
		if r.DataSent == 0 {
			t.Fatalf("%s sent nothing", p)
		}
	}
}

func TestFacadeSweepAndRender(t *testing.T) {
	opts := adhocsim.DefaultOptions()
	opts.Base = smallSpec()
	opts.Protocols = []string{adhocsim.AODV}
	opts.Seeds = []int64{1}
	sweep, err := adhocsim.PauseSweep(opts, []float64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	fig := adhocsim.Figure{ID: "t", Title: "test", Metric: adhocsim.MetricPDR, Sweep: sweep}
	txt := adhocsim.RenderFigure(fig)
	if !strings.Contains(txt, "AODV") || !strings.Contains(txt, "pause_s") {
		t.Fatalf("render missing columns:\n%s", txt)
	}
	csv := adhocsim.RenderFigureCSV(fig)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2 { // header + 2 x-points × 1 protocol
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "pause_s,protocol,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestFacadeSeconds(t *testing.T) {
	if adhocsim.Seconds(2) != 2*adhocsim.Second {
		t.Fatal("Seconds conversion")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	bad := adhocsim.DefaultSpec()
	bad.Nodes = 1 // invalid
	if _, err := adhocsim.Run(adhocsim.RunConfig{Spec: bad, Protocol: adhocsim.DSR, Seed: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := adhocsim.Run(adhocsim.RunConfig{Spec: smallSpec(), Protocol: "NOPE", Seed: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := adhocsim.RunReplicated(adhocsim.RunConfig{Spec: bad, Protocol: adhocsim.DSR}, []int64{1, 2}, 2); err == nil {
		t.Fatal("replicated run swallowed the error")
	}
	opts := adhocsim.DefaultOptions()
	opts.Base = bad
	if _, err := adhocsim.PauseSweep(opts, []float64{0}); err == nil {
		t.Fatal("sweep swallowed the error")
	}
}

func TestFacadeRunReplicatedDefaultSeeds(t *testing.T) {
	// Nil seed list must still run (single default seed).
	res, err := adhocsim.RunReplicated(adhocsim.RunConfig{Spec: smallSpec(), Protocol: adhocsim.DSDV}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent == 0 {
		t.Fatal("no traffic with default seeds")
	}
}
