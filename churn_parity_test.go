package adhocsim_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"testing"

	"adhocsim"
)

// churnReplaySpec is the fixed (spec, seed) pair the cross-process replay
// pins: a 20-node hour-fraction run under the alternating-renewal failure
// model, busy enough that every event kind appears.
func churnReplaySpec() adhocsim.Spec {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 20
	spec.Duration = 60 * adhocsim.Second
	spec.Sources = 3
	spec.Lifecycle = adhocsim.LifecycleSpec{
		Name:   "onoff-fail",
		Params: map[string]float64{"mean_up_s": 20, "mean_down_s": 5},
	}
	return spec
}

const churnHelperEnv = "ADHOCSIM_CHURN_SCHEDULE_HELPER"

// TestChurnScheduleHelperProcess is not a test of its own: the
// cross-process replay test re-executes the test binary with
// ADHOCSIM_CHURN_SCHEDULE_HELPER=1 so this process compiles the churn
// schedule from scratch and prints it.
func TestChurnScheduleHelperProcess(t *testing.T) {
	if os.Getenv(churnHelperEnv) != "1" {
		t.Skip("helper for TestChurnScheduleCrossProcessReplay")
	}
	inst, err := churnReplaySpec().Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(inst.Lifecycle)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("SCHEDULE %s\n", b)
}

// TestChurnScheduleCrossProcessReplay: a churn schedule must be a pure
// function of (spec, seed) across process boundaries — the property that
// lets distributed workers and journal resumes replay identical membership
// without shipping the schedule itself.
func TestChurnScheduleCrossProcessReplay(t *testing.T) {
	inst, err := churnReplaySpec().Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Lifecycle) == 0 {
		t.Fatal("replay spec compiled to an empty schedule")
	}
	want, err := json.Marshal(inst.Lifecycle)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestChurnScheduleHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), churnHelperEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process: %v\n%s", err, out)
	}
	var got []byte
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if rest, ok := bytes.CutPrefix(sc.Bytes(), []byte("SCHEDULE ")); ok {
			got = append([]byte(nil), rest...)
			break
		}
	}
	if got == nil {
		t.Fatalf("helper printed no schedule:\n%s", out)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cross-process schedule diverges:\nhere:  %s\nthere: %s", want, got)
	}
}

// churnEngineSpec is the dense short scenario the engine-parity sweep runs
// under failure churn: mean up/down periods well inside the 15 s horizon,
// so nodes fail and recover while routes are live.
func churnEngineSpec() adhocsim.Spec {
	spec := adhocsim.DefaultSpec()
	spec.Nodes = 40
	spec.Duration = 15 * adhocsim.Second
	spec.StartMin = 1 * adhocsim.Second
	spec.StartMax = 3 * adhocsim.Second
	spec.Lifecycle = adhocsim.LifecycleSpec{
		Name:   "onoff-fail",
		Params: map[string]float64{"mean_up_s": 8, "mean_down_s": 3},
	}
	return spec
}

// TestChurnEngineParity: every execution-strategy pair that is provably
// result-identical for fixed populations must stay identical under churn —
// the spatial index's liveness masking, the calendar queue's ordering of
// membership events, and the fan-out pool's candidate partitioning all sit
// on the churn-touched hot path.
func TestChurnEngineParity(t *testing.T) {
	for _, proto := range []string{adhocsim.Autoconf, adhocsim.AODV} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			run := func(phy adhocsim.PhyConfig) adhocsim.Results {
				t.Helper()
				res, err := adhocsim.Run(adhocsim.RunConfig{
					Spec: churnEngineSpec(), Protocol: proto, Seed: 5, Phy: phy,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(adhocsim.PhyConfig{})
			if base.Joins+base.Leaves == 0 {
				t.Fatal("onoff-fail run recorded no membership transitions")
			}
			if brute := run(adhocsim.PhyConfig{BruteForce: true}); !reflect.DeepEqual(base, brute) {
				t.Errorf("grid index diverges from brute force under churn:\ngrid:  %+v\nbrute: %+v", base, brute)
			}
			if cal := run(adhocsim.PhyConfig{Scheduler: adhocsim.QueueCalendar}); !reflect.DeepEqual(base, cal) {
				t.Errorf("calendar queue diverges from heap under churn:\nheap: %+v\ncal:  %+v", base, cal)
			}
			if par := run(adhocsim.PhyConfig{Workers: 8}); !reflect.DeepEqual(base, par) {
				t.Errorf("workers=8 diverges from sequential under churn:\nseq: %+v\npar: %+v", base, par)
			}
		})
	}
}

// TestChurnStaticZeroValueParity: an explicit {Name: "static"} lifecycle
// must be reflect.DeepEqual to the zero-value spec — the guarantee that
// keeps every pre-lifecycle golden capture valid.
func TestChurnStaticZeroValueParity(t *testing.T) {
	spec := adhocsim.DefaultSpec()
	spec.Duration = 10 * adhocsim.Second
	zero, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec.Lifecycle = adhocsim.LifecycleSpec{Name: "static"}
	named, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, named) {
		t.Fatalf("explicit static lifecycle diverges from the zero value:\nzero:  %+v\nnamed: %+v", zero, named)
	}
	if zero.Joins != 0 || zero.Leaves != 0 {
		t.Fatalf("static run recorded membership churn: %d joins, %d leaves", zero.Joins, zero.Leaves)
	}
}
