package adhocsim_test

import (
	"reflect"
	"testing"

	"adhocsim"
)

// TestSchedulerParityGoldenRuns: the calendar-queue scheduler must
// reproduce the heap's golden DSR/AODV seed-1 study runs bit-for-bit.
// TestSeedParityDefaultStudyRuns pins the heap results to the captured
// golden numbers, so DeepEqual here transitively pins the calendar queue to
// them too — (at, seq) is a strict total order, and a queue implementation
// that dispatches it faithfully cannot perturb a single counter or float.
func TestSchedulerParityGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("four 150 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 150 * adhocsim.Second
	for _, proto := range []string{adhocsim.DSR, adhocsim.AODV} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			heap, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: proto, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			cal, err := adhocsim.Run(adhocsim.RunConfig{
				Spec: spec, Protocol: proto, Seed: 1,
				Phy: adhocsim.PhyConfig{Scheduler: adhocsim.QueueCalendar},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(heap, cal) {
				t.Fatalf("calendar queue diverges from heap:\nheap     %+v\ncalendar %+v", heap, cal)
			}
		})
	}
}

// TestSchedulerParityGridBrute extends the grid-vs-brute parity suite
// across the scheduler axis: the spatial-index transmit path under the
// calendar queue must match the brute-force path under the heap — two runs
// sharing neither the receiver-candidate enumeration nor the event-queue
// shape, equal only because both respect the same dispatch order and the
// same exact per-leg power test.
func TestSchedulerParityGridBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("two 60 s study runs")
	}
	spec := adhocsim.DefaultSpec()
	spec.Duration = 60 * adhocsim.Second
	brute, err := adhocsim.Run(adhocsim.RunConfig{
		Spec: spec, Protocol: adhocsim.DSR, Seed: 1,
		Phy: adhocsim.PhyConfig{BruteForce: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	gridCal, err := adhocsim.Run(adhocsim.RunConfig{
		Spec: spec, Protocol: adhocsim.DSR, Seed: 1,
		Phy: adhocsim.PhyConfig{Scheduler: adhocsim.QueueCalendar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(brute, gridCal) {
		t.Fatalf("grid+calendar diverges from brute+heap:\nbrute    %+v\ngrid/cal %+v", brute, gridCal)
	}
}
