package adhocsim

import (
	"context"

	"adhocsim/internal/dist"
)

// Distributed campaign execution: a coordinator owns campaign lifecycle and
// aggregation while any number of worker processes lease run units over
// HTTP, execute them locally, and commit results back. Results are
// bit-identical (reflect.DeepEqual) to a single-process run of the same
// spec: seeds are content-derived, units are pure functions of the plan,
// and the coordinator commits replications in order. A content-addressed
// result cache short-circuits units whose results are already known, and a
// server-sent-events stream publishes live per-campaign progress.

// DistServer is the campaign coordinator: the single-process /campaigns
// HTTP API plus the worker lease/commit protocol and SSE progress streams.
type DistServer = dist.Server

// DistServerOptions configure a DistServer.
type DistServerOptions = dist.ServerOptions

// NewDistServer creates a coordinator and starts its lease reaper.
func NewDistServer(opts DistServerOptions) *DistServer {
	return dist.NewServer(opts)
}

// DistWorkerOptions configure a worker process.
type DistWorkerOptions = dist.WorkerOptions

// RunDistWorker joins a coordinator and executes leased run units until ctx
// is cancelled (gracefully: in-flight runs finish and commit first).
func RunDistWorker(ctx context.Context, opts DistWorkerOptions) error {
	return dist.RunWorker(ctx, opts)
}

// DistEvent is one progress or control event on the coordinator's bus.
type DistEvent = dist.Event

// Event types carried by DistEvent.
const (
	DistEventSnapshot          = dist.EventSnapshot
	DistEventRunCommitted      = dist.EventRunCommitted
	DistEventCellConverged     = dist.EventCellConverged
	DistEventCampaignDone      = dist.EventCampaignDone
	DistEventCampaignCancelled = dist.EventCampaignCancelled
)

// ResultStore is the content-addressed result cache interface.
type ResultStore = dist.Store

// NewMemResultStore creates an in-memory result cache.
func NewMemResultStore() ResultStore { return dist.NewMemStore() }

// NewFSResultStore creates (or reopens) a filesystem-backed result cache
// rooted at dir.
func NewFSResultStore(dir string) (ResultStore, error) { return dist.NewFSStore(dir) }
