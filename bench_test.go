// Benchmarks that regenerate every figure and table of the reproduced
// evaluation at smoke scale (the adhocfigs command runs the full-scale
// versions). Each benchmark executes one complete experiment per iteration
// and reports the headline metric(s) via b.ReportMetric, so `go test
// -bench=.` doubles as a quick shape check: DSR should report the lowest
// overhead, DSDV the lowest pause-0 delivery, and so on.
//
// BenchmarkAblation* quantify the design choices called out in DESIGN.md.
package adhocsim_test

import (
	"context"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"adhocsim"
	"adhocsim/internal/core"
	"adhocsim/internal/geo"
	"adhocsim/internal/mac"
	"adhocsim/internal/routing/aodv"
	"adhocsim/internal/routing/cbrp"
	"adhocsim/internal/routing/dsdv"
	"adhocsim/internal/routing/dsr"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
)

// benchOptions returns the smoke-scale study configuration used by the
// figure benchmarks: 25 nodes, 60 simulated seconds, one seed.
func benchOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Base.Nodes = 25
	opts.Base.Area = geo.Rect{W: 1000, H: 300}
	opts.Base.Duration = 60 * sim.Second
	opts.Base.Sources = 8
	opts.Seeds = []int64{1}
	return opts
}

var benchPauses = []float64{0, 30, 60}

// reportPerProtocol emits metric values for the most mobile point (x index
// 0) of a sweep, labelled per protocol.
func reportPerProtocol(b *testing.B, sweep *core.SweepResult, m core.Metric) {
	for _, p := range sweep.Protocols {
		b.ReportMetric(m.Value(sweep.Cells[p][0]), p+"_"+m.Name)
	}
}

func runPauseSweep(b *testing.B, opts core.Options) *core.SweepResult {
	b.Helper()
	var sweep *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = core.PauseSweep(context.Background(), opts, benchPauses)
		if err != nil {
			b.Fatal(err)
		}
	}
	return sweep
}

// BenchmarkFig1_PDRvsPause regenerates Figure 1 (packet delivery ratio vs
// pause time, all protocols).
func BenchmarkFig1_PDRvsPause(b *testing.B) {
	sweep := runPauseSweep(b, benchOptions())
	reportPerProtocol(b, sweep, core.MetricPDR)
}

// BenchmarkFig2_OverheadVsPause regenerates Figure 2 (routing overhead vs
// pause time).
func BenchmarkFig2_OverheadVsPause(b *testing.B) {
	sweep := runPauseSweep(b, benchOptions())
	reportPerProtocol(b, sweep, core.MetricOverhead)
}

// BenchmarkFig3_DelayVsPause regenerates Figure 3 (average end-to-end delay
// vs pause time).
func BenchmarkFig3_DelayVsPause(b *testing.B) {
	sweep := runPauseSweep(b, benchOptions())
	reportPerProtocol(b, sweep, core.MetricDelay)
}

// BenchmarkFig4_ThroughputVsPause regenerates Figure 4 (delivered
// throughput vs pause time).
func BenchmarkFig4_ThroughputVsPause(b *testing.B) {
	sweep := runPauseSweep(b, benchOptions())
	reportPerProtocol(b, sweep, core.MetricThroughput)
}

// BenchmarkFig5_PathOptimality regenerates Figure 5 (hops beyond optimal).
func BenchmarkFig5_PathOptimality(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		hist, err := core.PathOptimality(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for p, h := range hist {
			var total, optimal uint64
			for e, n := range h {
				total += n
				if e == 0 {
					optimal += n
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(optimal)/float64(total), p+"_optimal_pct")
			}
		}
	}
}

// BenchmarkFig6_Density regenerates Figure 6 (metrics vs node count).
func BenchmarkFig6_Density(b *testing.B) {
	opts := benchOptions()
	var sweep *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = core.DensitySweep(context.Background(), opts, []float64{10, 20, 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range sweep.Protocols {
		last := len(sweep.Xs) - 1
		b.ReportMetric(core.MetricPDR.Value(sweep.Cells[p][last]), p+"_pdr_dense")
	}
}

// BenchmarkFig7_Load regenerates Figure 7 (delay/throughput vs offered
// load).
func BenchmarkFig7_Load(b *testing.B) {
	opts := benchOptions()
	var sweep *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = core.LoadSweep(context.Background(), opts, []float64{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range sweep.Protocols {
		last := len(sweep.Xs) - 1
		b.ReportMetric(core.MetricThroughput.Value(sweep.Cells[p][last]), p+"_tput_loaded")
	}
}

// BenchmarkFig8_Speed regenerates Figure 8 (PDR/overhead vs max speed).
func BenchmarkFig8_Speed(b *testing.B) {
	opts := benchOptions()
	var sweep *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = core.SpeedSweep(context.Background(), opts, []float64{1, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range sweep.Protocols {
		last := len(sweep.Xs) - 1
		b.ReportMetric(core.MetricPDR.Value(sweep.Cells[p][last]), p+"_pdr_fast")
	}
}

// BenchmarkTable1_Summary regenerates Table 1 (per-protocol summary at
// pause 0).
func BenchmarkTable1_Summary(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		sum, err := core.SummaryTable(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for p, r := range sum {
			b.ReportMetric(r.PDR*100, p+"_pdr")
			b.ReportMetric(r.NormalizedRoutingLoad, p+"_nrl")
		}
	}
}

// BenchmarkTable2_Breakdown regenerates Table 2 (overhead by message type).
func BenchmarkTable2_Breakdown(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		sum, err := core.SummaryTable(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for p, r := range sum {
			var total uint64
			for _, n := range r.RoutingByType {
				total += n
			}
			b.ReportMetric(float64(total), p+"_routing_tx")
		}
	}
}

// --- ablation benches (design choices from DESIGN.md) ---------------------

func ablationSpec() scenario.Spec {
	s := scenario.Default()
	s.Nodes = 25
	s.Area = geo.Rect{W: 1000, H: 300}
	s.Duration = 60 * sim.Second
	s.Sources = 8
	return s
}

func runAblation(b *testing.B, proto string, tweaks core.ProtocolTweaks, macCfg mac.Config) (pdr, overhead float64) {
	b.Helper()
	res, err := core.Run(context.Background(), core.RunConfig{
		Spec: ablationSpec(), Protocol: proto, Seed: 1, Tweaks: tweaks, Mac: macCfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.PDR * 100, float64(res.RoutingTxPackets)
}

// BenchmarkAblationRTSCTS compares the MAC with and without the RTS/CTS
// exchange for unicast data.
func BenchmarkAblationRTSCTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		onPDR, _ := runAblation(b, core.DSR, core.ProtocolTweaks{}, mac.Config{})
		offPDR, _ := runAblation(b, core.DSR, core.ProtocolTweaks{}, mac.Config{RTSThreshold: 1 << 20})
		b.ReportMetric(onPDR, "pdr_rtscts_on")
		b.ReportMetric(offPDR, "pdr_rtscts_off")
	}
}

// BenchmarkAblationExpandingRing compares AODV's expanding-ring search with
// immediate network-wide floods.
func BenchmarkAblationExpandingRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, ringTx := runAblation(b, core.AODV, core.ProtocolTweaks{}, mac.Config{})
		_, fullTx := runAblation(b, core.AODV,
			core.ProtocolTweaks{AODV: aodv.Config{DisableExpandingRing: true}}, mac.Config{})
		b.ReportMetric(ringTx, "rreq_tx_ring")
		b.ReportMetric(fullTx, "rreq_tx_full")
	}
}

// BenchmarkAblationDSRCacheReplies compares DSR with and without replies
// from intermediate caches.
func BenchmarkAblationDSRCacheReplies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, onTx := runAblation(b, core.DSR, core.ProtocolTweaks{}, mac.Config{})
		_, offTx := runAblation(b, core.DSR,
			core.ProtocolTweaks{DSR: dsr.Config{DisableReplyFromCache: true}}, mac.Config{})
		b.ReportMetric(onTx, "overhead_cache_on")
		b.ReportMetric(offTx, "overhead_cache_off")
	}
}

// BenchmarkAblationCBRPClusterFlood compares CBRP's head/gateway-restricted
// flooding against blind flooding.
func BenchmarkAblationCBRPClusterFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, onTx := runAblation(b, core.CBRP, core.ProtocolTweaks{}, mac.Config{})
		_, offTx := runAblation(b, core.CBRP,
			core.ProtocolTweaks{CBRP: cbrp.Config{DisableClusterFlooding: true}}, mac.Config{})
		b.ReportMetric(onTx, "overhead_cluster")
		b.ReportMetric(offTx, "overhead_blind")
	}
}

// BenchmarkAblationDSDVTriggered compares DSDV with and without triggered
// updates.
func BenchmarkAblationDSDVTriggered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		onPDR, _ := runAblation(b, core.DSDV, core.ProtocolTweaks{}, mac.Config{})
		offPDR, _ := runAblation(b, core.DSDV,
			core.ProtocolTweaks{DSDV: dsdv.Config{DisableTriggered: true}}, mac.Config{})
		b.ReportMetric(onPDR, "pdr_triggered")
		b.ReportMetric(offPDR, "pdr_periodic_only")
	}
}

// BenchmarkAblationPAODV compares plain AODV against preemptive AODV.
func BenchmarkAblationPAODV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plainPDR, plainTx := runAblation(b, core.AODV, core.ProtocolTweaks{}, mac.Config{})
		prePDR, preTx := runAblation(b, core.PAODV, core.ProtocolTweaks{}, mac.Config{})
		b.ReportMetric(plainPDR, "pdr_aodv")
		b.ReportMetric(prePDR, "pdr_paodv")
		b.ReportMetric(plainTx, "overhead_aodv")
		b.ReportMetric(preTx, "overhead_paodv")
	}
}

// BenchmarkSingleRun measures raw simulator throughput for one standard run
// (events/sec is visible through ns/op).
func BenchmarkSingleRun(b *testing.B) {
	spec := ablationSpec()
	for i := 0; i < b.N; i++ {
		if _, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.DSR, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// largeNSpec is the large-N scenario behind the spatial-index speedup
// claim: 200 CBRP nodes beaconing across a sparse 16×16 km field for 900
// simulated seconds. The regime is deliberately PHY-bound — every HELLO is
// a broadcast the channel must fan out, so the per-transmission receiver
// scan dominates the run and the O(N) brute-force loop pays for all 200
// radios on every one of ~90k transmissions. Dense scenes (every node
// within carrier-sense range of most others) are MAC- and heap-bound
// instead and gain far less; see DESIGN.md.
func largeNSpec() adhocsim.Spec {
	s := adhocsim.DefaultSpec()
	s.Nodes = 200
	s.Area = geo.Rect{W: 16000, H: 16000}
	s.TxRange = 100
	s.Sources = 1
	s.Rate = 0.25
	s.Duration = 900 * sim.Second
	return s
}

func runLargeN(b *testing.B, spec adhocsim.Spec, phy adhocsim.PhyConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := adhocsim.Run(adhocsim.RunConfig{
			Spec:     spec,
			Protocol: adhocsim.CBRP,
			Seed:     1,
			Phy:      phy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.RoutingTxPackets == 0 {
			b.Fatal("large-N run produced no beacon traffic")
		}
	}
}

// BenchmarkSingleRunLargeN measures one 200-node run on the spatial-index
// transmit path (the default).
func BenchmarkSingleRunLargeN(b *testing.B) {
	runLargeN(b, largeNSpec(), adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second})
}

// BenchmarkSingleRunLargeNBruteForce is the identical run on the legacy
// all-radios loop; the ns/op ratio against BenchmarkSingleRunLargeN is the
// spatial index's speedup (≥5× on the reference hardware).
func BenchmarkSingleRunLargeNBruteForce(b *testing.B) {
	runLargeN(b, largeNSpec(), adhocsim.PhyConfig{BruteForce: true})
}

// BenchmarkSingleRunLargeNGaussMarkov is the same 200-node spatial-index
// run under registry-selected Gauss-Markov mobility, so the committed
// baseline tracks a non-waypoint scenario. Gauss-Markov emits one segment
// per node per tick (~900 per track here vs a handful for waypoint),
// stressing track evaluation and the index's speed-bound padding.
func BenchmarkSingleRunLargeNGaussMarkov(b *testing.B) {
	spec := largeNSpec()
	spec.Mobility = adhocsim.MobilitySpec{Name: "gauss-markov"}
	runLargeN(b, spec, adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second})
}

// cityScaleSpec scales the large-N scenario to n nodes at constant density
// (area grows with √n, exactly what core.ScaleAxis does) under
// registry-selected Manhattan mobility — the city-scale regime: a street
// grid of beaconing CBRP nodes, thousands of pending events, working sets
// far beyond cache. Duration is one simulated minute so a full
// heap/calendar × 5k/10k matrix stays benchable.
func cityScaleSpec(n int) adhocsim.Spec {
	s := largeNSpec()
	k := math.Sqrt(float64(n) / float64(s.Nodes))
	s.Area = geo.Rect{W: s.Area.W * k, H: s.Area.H * k}
	s.Nodes = n
	s.Mobility = adhocsim.MobilitySpec{Name: "manhattan"}
	s.Duration = 60 * sim.Second
	return s
}

// BenchmarkSingleRunCityScale is the city-scale tier: 5k- and 10k-node
// single runs under Manhattan mobility at the large-N density, on both
// event-queue implementations. The heap/calendar ns/op ratio at each
// population prices the scheduler (the calendar queue's O(1) amortized
// insert/pop vs the heap's O(log n)); allocations per run are reported so
// a per-event allocation regression on the flattened hot path is visible
// in the committed baseline.
func BenchmarkSingleRunCityScale(b *testing.B) {
	for _, tc := range []struct {
		name  string
		nodes int
		sched adhocsim.QueueKind
	}{
		{"5k-heap", 5000, adhocsim.QueueHeap},
		{"5k-calendar", 5000, adhocsim.QueueCalendar},
		{"10k-heap", 10000, adhocsim.QueueHeap},
		{"10k-calendar", 10000, adhocsim.QueueCalendar},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := cityScaleSpec(tc.nodes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := adhocsim.Run(adhocsim.RunConfig{
					Spec:     spec,
					Protocol: adhocsim.CBRP,
					Seed:     1,
					Phy: adhocsim.PhyConfig{
						ReindexInterval: 5 * sim.Second,
						Scheduler:       tc.sched,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.RoutingTxPackets == 0 {
					b.Fatal("city-scale run produced no beacon traffic")
				}
			}
		})
	}
}

// BenchmarkSingleRunCityScaleChurn prices dynamic membership at city
// scale: the 10k-node calendar-queue run under the alternating-renewal
// failure model, so thousands of nodes fail and recover mid-run. The delta
// against the churn-free 10k-calendar tier prices the liveness bitmap on
// the transmit hot path plus the Down/Up membership events themselves.
func BenchmarkSingleRunCityScaleChurn(b *testing.B) {
	spec := cityScaleSpec(10000)
	spec.Lifecycle = adhocsim.LifecycleSpec{
		Name:   "onoff-fail",
		Params: map[string]float64{"mean_up_s": 30, "mean_down_s": 10},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := adhocsim.Run(adhocsim.RunConfig{
			Spec:     spec,
			Protocol: adhocsim.CBRP,
			Seed:     1,
			Phy: adhocsim.PhyConfig{
				ReindexInterval: 5 * sim.Second,
				Scheduler:       adhocsim.QueueCalendar,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Joins+res.Leaves == 0 {
			b.Fatal("city-scale churn run recorded no membership transitions")
		}
	}
}

// TestLargeNAllocationBudget is the allocation-regression tripwire behind
// the b.ReportAllocs numbers: one 200-node large-N run must stay under a
// generous heap-allocation budget. The hot paths are pooled (events,
// arrivals, receptions) and the per-node state is flattened, so steady-state
// allocation is dominated by setup (tracks, protocol state) — if this
// trips, something started allocating per event, which at city scale means
// millions of allocations per simulated minute.
func TestLargeNAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("one 900 s large-N run")
	}
	spec := largeNSpec()
	phy := adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.CBRP, Seed: 1, Phy: phy})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.RoutingTxPackets == 0 {
		t.Fatal("large-N run produced no beacon traffic")
	}
	mallocs := after.Mallocs - before.Mallocs
	// Measured ~3× headroom over the current implementation; the budget is
	// a coarse bound meant to catch per-event allocation creep, not to pin
	// the exact count.
	const budget = 2_000_000
	if mallocs > budget {
		t.Fatalf("large-N run performed %d heap allocations, budget %d", mallocs, budget)
	}
}

// largeNSinks is one of every production metric sink: quantile sketches on
// delay and hops, a 60-bucket time series, per-kind Welford cells, and a
// JSONL dump to io.Discard. Matches what campaign execution attaches plus
// the stream dump, so the benchmark prices the full streaming tap.
func largeNSinks(spec adhocsim.Spec) []adhocsim.MetricSink {
	return []adhocsim.MetricSink{
		adhocsim.NewSketchSink(100, adhocsim.MetricDelaySec, adhocsim.MetricHops),
		adhocsim.NewWindowSink(spec.Duration, 60),
		adhocsim.NewWelfordSink(),
		adhocsim.NewJSONLSink(io.Discard),
	}
}

// BenchmarkSingleRunLargeNMetrics is the 200-node spatial-index run with the
// full sink set attached; the ns/op delta against BenchmarkSingleRunLargeN
// prices the streaming-metrics tap on the event hot path.
func BenchmarkSingleRunLargeNMetrics(b *testing.B) {
	spec := largeNSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := adhocsim.Run(adhocsim.RunConfig{
			Spec:     spec,
			Protocol: adhocsim.CBRP,
			Seed:     1,
			Phy:      adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second},
			Sinks:    largeNSinks(spec),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.RoutingTxPackets == 0 {
			b.Fatal("large-N run produced no beacon traffic")
		}
	}
}

// TestLargeNAllocationBudgetAllSinks holds the sinked run to the same budget
// as the sinkless one: every sink is bounded (sketch centroids are capped,
// the window has fixed buckets, the JSONL writer reuses its encode buffer),
// so attaching them must not introduce per-event allocation.
func TestLargeNAllocationBudgetAllSinks(t *testing.T) {
	if testing.Short() {
		t.Skip("one 900 s large-N run")
	}
	spec := largeNSpec()
	sinks := largeNSinks(spec)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := adhocsim.Run(adhocsim.RunConfig{
		Spec: spec, Protocol: adhocsim.CBRP, Seed: 1,
		Phy:   adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second},
		Sinks: sinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.RoutingTxPackets == 0 {
		t.Fatal("large-N run produced no beacon traffic")
	}
	mallocs := after.Mallocs - before.Mallocs
	const budget = 2_000_000 // same cap as TestLargeNAllocationBudget
	if mallocs > budget {
		t.Fatalf("sinked large-N run performed %d heap allocations, budget %d", mallocs, budget)
	}
}

// benchWorkers returns the worker count for the parallel benchmark tier:
// ADHOCSIM_BENCH_WORKERS when set (CI's race step pins 4), 8 otherwise.
func benchWorkers(b *testing.B) int {
	if s := os.Getenv("ADHOCSIM_BENCH_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			b.Fatalf("bad ADHOCSIM_BENCH_WORKERS=%q", s)
		}
		return n
	}
	return 8
}

// BenchmarkSingleRunCityScaleParallel is the workers-enabled twin of
// BenchmarkSingleRunCityScale (identical subtest names, so benchjson
// -compare pairs the two and prints the speedup column). The fan-out pool
// and the pipelined reindex only pay off with real cores: on a single-CPU
// host the numbers price the coordination overhead instead, which is why
// the twin is a separate benchmark rather than a replacement.
func BenchmarkSingleRunCityScaleParallel(b *testing.B) {
	workers := benchWorkers(b)
	for _, tc := range []struct {
		name  string
		nodes int
		sched adhocsim.QueueKind
	}{
		{"5k-calendar", 5000, adhocsim.QueueCalendar},
		{"10k-calendar", 10000, adhocsim.QueueCalendar},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := cityScaleSpec(tc.nodes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := adhocsim.Run(adhocsim.RunConfig{
					Spec:     spec,
					Protocol: adhocsim.CBRP,
					Seed:     1,
					Phy: adhocsim.PhyConfig{
						ReindexInterval: 5 * sim.Second,
						Scheduler:       tc.sched,
						Workers:         workers,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.RoutingTxPackets == 0 {
					b.Fatal("city-scale run produced no beacon traffic")
				}
			}
		})
	}
}

// TestParallelAllocationBudget holds the workers=8 large-N run to the same
// 2M-malloc budget as the sequential tripwire: the fan-out arena and the
// double-buffered grid are preallocated and reused, so enabling workers
// must not introduce per-transmit allocation (the per-ParallelFor cost is
// one channel send per worker, not a goroutine spawn).
func TestParallelAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("one 900 s large-N run")
	}
	spec := largeNSpec()
	phy := adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second, Workers: 8}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := adhocsim.Run(adhocsim.RunConfig{Spec: spec, Protocol: adhocsim.CBRP, Seed: 1, Phy: phy})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.RoutingTxPackets == 0 {
		t.Fatal("large-N run produced no beacon traffic")
	}
	mallocs := after.Mallocs - before.Mallocs
	const budget = 2_000_000 // same cap as TestLargeNAllocationBudget
	if mallocs > budget {
		t.Fatalf("parallel large-N run performed %d heap allocations, budget %d", mallocs, budget)
	}
}

// BenchmarkSingleRunLargeNSINR is the 200-node run with cumulative-
// interference SINR reception on the spatial-index transmit path (no
// brute-force fallback: the interference sum is floored at the
// carrier-sense threshold, so the index's candidate set is exactly the
// interferer set). The delta against BenchmarkSingleRunLargeN prices the
// per-arrival interference accounting.
func BenchmarkSingleRunLargeNSINR(b *testing.B) {
	spec := largeNSpec()
	spec.Radio.SINR = true
	runLargeN(b, spec, adhocsim.PhyConfig{ReindexInterval: 5 * sim.Second})
}
