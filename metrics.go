package adhocsim

import (
	"io"

	"adhocsim/internal/metrics"
	"adhocsim/internal/stats"
)

// The streaming-metrics surface: runs can emit their raw metric events as a
// typed sample stream (RunConfig.Sinks) consumed by bounded-memory sinks —
// online quantile sketches, fixed-bucket time series, per-kind Welford
// cells, or a JSONL dump. See internal/metrics for the determinism and
// bounded-memory contracts.

// MetricKind labels what a MetricSample measures.
type MetricKind = metrics.Kind

// The metric sample taxonomy.
const (
	MetricOriginated = metrics.Originated
	MetricDelivered  = metrics.Delivered
	MetricDelaySec   = metrics.Delay
	MetricHops       = metrics.Hops
	MetricRoutingTx  = metrics.RoutingTx
	MetricDataTx     = metrics.DataTx
	MetricDropped    = metrics.Dropped
)

// MetricSample is one typed metric observation at a point in virtual time.
type MetricSample = metrics.Sample

// MetricSink consumes a run's sample stream; attach via RunConfig.Sinks.
type MetricSink = metrics.Sink

// QuantileSketch is a deterministic bounded-memory t-digest.
type QuantileSketch = metrics.Sketch

// QuantileSketchState is the JSON-exact serialized form of a QuantileSketch.
type QuantileSketchState = metrics.SketchState

// QuantileSummary is the fixed percentile set campaign results serve.
type QuantileSummary = metrics.QuantileSummary

// MetricSeries is the serialized fixed-bucket time series of a run or cell.
type MetricSeries = metrics.SeriesState

// NewQuantileSketch creates a sketch with compression δ (centroid budget ~δ).
func NewQuantileSketch(compression float64) *QuantileSketch { return metrics.NewSketch(compression) }

// QuantileSketchFromState reconstructs a sketch exactly from its state.
func QuantileSketchFromState(st QuantileSketchState) *QuantileSketch { return metrics.FromState(st) }

// NewSketchSink creates a MetricSink sketching the given kinds.
func NewSketchSink(compression float64, kinds ...MetricKind) *metrics.SketchSink {
	return metrics.NewSketchSink(compression, kinds...)
}

// NewWindowSink creates a MetricSink bucketing samples into at most
// maxBuckets fixed sim-time windows over [0, horizon).
func NewWindowSink(horizon Duration, maxBuckets int) *metrics.Window {
	return metrics.NewWindow(horizon, maxBuckets)
}

// NewJSONLSink creates a MetricSink dumping every sample as one JSON line;
// call Flush when the run completes.
func NewJSONLSink(w io.Writer) *metrics.JSONLWriter { return metrics.NewJSONLWriter(w) }

// NewWelfordSink creates a MetricSink keeping one Welford mean/variance cell
// per sample kind.
func NewWelfordSink() *stats.WelfordSink { return stats.NewWelfordSink() }
